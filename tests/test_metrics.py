"""Tests for the evaluation metrics."""

import numpy as np
import pytest

from repro.core.lia import LIAResult
from repro.core.reduction import ReductionResult
from repro.core.variance import VarianceEstimate
from repro.core.covariance import CovarianceSummary
from repro.metrics import (
    AccuracyReport,
    EmpiricalCDF,
    ErrorSummary,
    absolute_error,
    classify_congested,
    detection_outcome,
    error_factor,
    evaluate_location,
    per_column_thresholds,
    physical_log_rates,
    validate_against_paths,
)


class TestDetection:
    def test_paper_definitions(self):
        identified = np.array([True, True, False, False])
        congested = np.array([True, False, True, False])
        outcome = detection_outcome(identified, congested)
        assert outcome.detection_rate == 0.5  # |F n X| / |F| = 1/2
        assert outcome.false_positive_rate == 0.5  # |X \\ F| / |X| = 1/2

    def test_degenerate_cases(self):
        nothing = detection_outcome(
            np.zeros(3, dtype=bool), np.zeros(3, dtype=bool)
        )
        assert nothing.detection_rate == 1.0
        assert nothing.false_positive_rate == 0.0

    def test_outcome_addition(self):
        a = detection_outcome(
            np.array([True, False]), np.array([True, True])
        )
        b = detection_outcome(
            np.array([False, True]), np.array([False, True])
        )
        combined = a + b
        assert combined.true_positives == 2
        assert combined.num_congested == 3

    def test_per_column_thresholds(self, small_tree):
        _, _, routing = small_tree
        thresholds = per_column_thresholds(routing, 0.002)
        members = np.array([v.size for v in routing.virtual_links])
        assert np.allclose(thresholds, 1 - (1 - 0.002) ** members)
        assert (thresholds >= 0.002 - 1e-12).all()

    def test_classify(self):
        loss = np.array([0.001, 0.05])
        assert classify_congested(loss, 0.002).tolist() == [False, True]

    def test_evaluate_location(self, small_tree):
        _, _, routing = small_tree
        congested = np.zeros(routing.num_links, dtype=bool)
        congested[0] = True
        loss = np.zeros(routing.num_links)
        loss[0] = 0.1
        outcome = evaluate_location(loss, congested, routing, 0.002)
        assert outcome.detection_rate == 1.0
        assert outcome.false_positive_rate == 0.0


class TestErrorFactor:
    def test_equation_10(self):
        # f_delta(q, q*) with delta = 1e-3.
        assert error_factor(
            np.array([0.01]), np.array([0.02])
        )[0] == pytest.approx(2.0)
        assert error_factor(
            np.array([0.02]), np.array([0.01])
        )[0] == pytest.approx(2.0)

    def test_floor_applies(self):
        # Both below delta: treated as delta -> factor 1.
        assert error_factor(
            np.array([1e-5]), np.array([1e-6])
        )[0] == pytest.approx(1.0)

    def test_perfect_estimate(self):
        q = np.array([0.05, 0.1])
        assert np.allclose(error_factor(q, q), 1.0)

    def test_delta_validation(self):
        with pytest.raises(ValueError):
            error_factor(np.array([0.1]), np.array([0.1]), delta=0)

    def test_absolute_error(self):
        assert absolute_error(
            np.array([0.1]), np.array([0.08])
        )[0] == pytest.approx(0.02)

    def test_summaries(self):
        values = np.array([0.3, 0.1, 0.2])
        summary = ErrorSummary.of(values)
        assert summary.as_row() == (0.3, 0.2, 0.1)

    def test_accuracy_report(self):
        report = AccuracyReport.compare(
            np.array([0.1, 0.0]), np.array([0.1, 0.0])
        )
        assert report.error_factors.median == 1.0
        assert report.absolute_errors.maximum == 0.0


class TestCDF:
    def test_monotone_and_bounded(self):
        cdf = EmpiricalCDF.of(np.random.default_rng(0).random(500))
        points = np.linspace(-0.5, 1.5, 40)
        values = cdf.at(points)
        assert (np.diff(values) >= 0).all()
        assert values[0] == 0.0 and values[-1] == 1.0

    def test_known_quantile(self):
        cdf = EmpiricalCDF.of(np.arange(100))
        assert cdf.at(49) == pytest.approx(0.5)
        assert cdf.quantile(0.5) == pytest.approx(49.5)

    def test_series(self):
        cdf = EmpiricalCDF.of(np.array([1.0, 2.0]))
        assert cdf.series([1.5]) == [(1.5, 0.5)]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            EmpiricalCDF.of(np.array([]))


def _fake_result(rates):
    n = len(rates)
    estimate = VarianceEstimate(
        variances=np.zeros(n),
        method="wls",
        covariance_summary=CovarianceSummary(2, 1, 0),
        residual_norm=0.0,
    )
    reduction = ReductionResult(
        kept_columns=np.arange(n),
        removed_columns=np.array([], dtype=np.int64),
        strategy="threshold",
    )
    return LIAResult(
        transmission_rates=np.asarray(rates),
        variance_estimate=estimate,
        reduction=reduction,
    )


class TestValidation:
    def test_physical_rates_split_across_members(self, small_tree):
        _, _, routing = small_tree
        rates = np.full(routing.num_links, 0.81)
        per_physical = physical_log_rates(rates, routing)
        for vlink in routing.virtual_links:
            for member in vlink.member_indices():
                assert per_physical[member] == pytest.approx(
                    np.log(0.81) / vlink.size
                )

    def test_consistent_paths_counted(self, figure1):
        net, paths, routing = figure1
        result = _fake_result(np.ones(routing.num_links))
        # Perfect network: measured rates 1.0 everywhere -> consistent.
        outcome = validate_against_paths(
            result, routing, paths, np.ones(len(paths))
        )
        assert outcome.consistency_rate == 1.0

    def test_inconsistency_detected(self, figure1):
        net, paths, routing = figure1
        result = _fake_result(np.ones(routing.num_links))
        measured = np.array([0.5, 1.0, 1.0])  # path 0 lost half its probes
        outcome = validate_against_paths(result, routing, paths, measured)
        assert outcome.num_consistent == 2

    def test_epsilon_validation(self, figure1):
        net, paths, routing = figure1
        result = _fake_result(np.ones(routing.num_links))
        with pytest.raises(ValueError):
            validate_against_paths(
                result, routing, paths, np.ones(len(paths)), epsilon=0
            )

    def test_links_outside_inference_ignored(self, figure1):
        """A validation path through uncovered links predicts factor 1."""
        net, paths, routing = figure1
        result = _fake_result(np.ones(routing.num_links))
        from repro.topology.graph import Network, Path

        other = Network()
        link = other.add_link(50, 51)
        foreign = Path(index=0, source=50, dest=51, links=(link,))
        # Physical link index 0 of the foreign net collides with a column
        # member; use measured rate == that member's share to stay robust:
        outcome = validate_against_paths(
            result, routing, [foreign], np.array([1.0])
        )
        assert outcome.num_paths == 1
