"""Equivalence tests pinning the blocked kernels to the seed paths.

The blocked Householder QR, the array-backed incremental basis, and the
sparse-aware reduction legitimately reorder floating-point sums, so they
are pinned to the seed pure-Python implementations (kept as
``*_reference``) and to numpy/scipy to tight tolerances rather than bit
for bit.
"""

import numpy as np
import pytest
from scipy import sparse

from repro.core.augmented import AugmentedMatrixBuilder, intersecting_pairs
from repro.core.linalg import (
    IncrementalColumnBasis,
    QRFactorization,
    back_substitution,
    greedy_independent_columns,
    householder_qr,
    householder_qr_reference,
    qr_column_rank,
)
from repro.core.reduction import reduce_to_full_rank, solve_reduced_system


def random_matrix(m, n, seed):
    return np.random.default_rng(seed).normal(size=(m, n))


def random_binary(m, n, seed, density=0.25):
    rng = np.random.default_rng(seed)
    R = (rng.random(size=(m, n)) < density).astype(np.float64)
    # Every column covered, per the routing-matrix precondition.
    empty = np.flatnonzero(R.sum(axis=0) == 0)
    R[rng.integers(0, m, size=len(empty)), empty] = 1.0
    return R


class TestBlockedQRAgainstSeed:
    @pytest.mark.parametrize("shape", [(5, 5), (40, 17), (90, 64), (64, 64), (7, 1)])
    @pytest.mark.parametrize("block_size", [1, 4, 32])
    def test_matches_reference_factorization(self, shape, block_size):
        A = random_matrix(*shape, seed=sum(shape) + block_size)
        Q, R = householder_qr(A, block_size=block_size)
        Q_ref, R_ref = householder_qr_reference(A)
        # Same Householder sign convention -> same factorization, not
        # just the same subspace.
        assert np.allclose(R, R_ref, atol=1e-9)
        assert np.allclose(Q, Q_ref, atol=1e-9)
        assert np.allclose(Q @ R, A, atol=1e-10)
        assert np.allclose(Q.T @ Q, np.eye(shape[1]), atol=1e-10)

    def test_zero_columns_and_duplicates(self):
        A = random_matrix(20, 6, seed=3)
        A[:, 2] = 0.0
        A[:, 4] = A[:, 1]
        for block_size in (2, 32):
            Q, R = householder_qr(A, block_size=block_size)
            assert np.allclose(Q @ R, A, atol=1e-10)

    def test_matches_numpy_qr_subspace(self):
        A = random_matrix(50, 20, seed=4)
        _, R = householder_qr(A)
        _, R_np = np.linalg.qr(A)
        assert np.allclose(np.abs(np.diag(R)), np.abs(np.diag(R_np)), atol=1e-9)


class TestBatchedBasisAgainstSeed:
    @pytest.mark.parametrize("seed", range(5))
    def test_same_acceptance_decisions(self, seed):
        rng = np.random.default_rng(seed)
        dim = 12
        fast = IncrementalColumnBasis(dimension=dim)
        ref = IncrementalColumnBasis(dimension=dim)
        base = rng.normal(size=(dim, 6))
        offers = []
        for _ in range(30):
            if rng.random() < 0.4:  # dependent offer
                offers.append(base @ rng.normal(size=6))
            else:
                offers.append(rng.normal(size=dim))
        decisions_fast = [fast.try_add(v) for v in offers]
        decisions_ref = [ref.try_add_reference(v) for v in offers]
        assert decisions_fast == decisions_ref
        assert fast.rank == ref.rank
        B_fast, B_ref = fast.basis_matrix, ref.basis_matrix
        assert np.allclose(B_fast.T @ B_fast, np.eye(fast.rank), atol=1e-10)
        # Same span either way.
        assert np.allclose(
            B_fast @ (B_fast.T @ B_ref), B_ref, atol=1e-8
        )

    def test_capacity_growth_beyond_initial(self):
        dim = 100
        basis = IncrementalColumnBasis(dimension=dim)
        rng = np.random.default_rng(7)
        for _ in range(70):
            basis.try_add(rng.normal(size=dim))
        assert basis.rank == 70
        B = basis.basis_matrix
        assert np.allclose(B.T @ B, np.eye(70), atol=1e-9)


class TestSparseKernels:
    def test_greedy_columns_sparse_matches_dense(self):
        R = random_binary(30, 22, seed=11)
        priority = np.random.default_rng(12).permutation(22)
        dense = greedy_independent_columns(R, priority)
        for fmt in (sparse.csr_matrix, sparse.csc_matrix):
            assert greedy_independent_columns(fmt(R), priority) == dense

    def test_qr_column_rank_sparse(self):
        R = random_binary(25, 18, seed=13)
        assert qr_column_rank(sparse.csr_matrix(R)) == np.linalg.matrix_rank(R)

    @pytest.mark.parametrize("strategy", ["paper", "greedy", "gap"])
    def test_reduction_sparse_matches_dense(self, strategy):
        R = random_binary(40, 30, seed=14)
        v = np.random.default_rng(15).random(30)
        dense = reduce_to_full_rank(R, v, strategy=strategy)
        sparse_result = reduce_to_full_rank(sparse.csr_matrix(R), v, strategy=strategy)
        assert np.array_equal(dense.kept_columns, sparse_result.kept_columns)

    def test_threshold_reduction_sparse_matches_dense(self):
        R = random_binary(40, 30, seed=16)
        v = np.random.default_rng(17).random(30)
        dense = reduce_to_full_rank(
            R, v, strategy="threshold", variance_cutoff=0.5
        )
        sp = reduce_to_full_rank(
            sparse.csc_matrix(R), v, strategy="threshold", variance_cutoff=0.5
        )
        assert np.array_equal(dense.kept_columns, sp.kept_columns)

    def test_solve_reduced_sparse_matches_dense(self):
        R = random_binary(40, 30, seed=18)
        v = np.random.default_rng(19).random(30)
        reduction = reduce_to_full_rank(R, v, strategy="greedy")
        y = -np.random.default_rng(20).random(40)
        x_dense = solve_reduced_system(R, y, reduction)
        x_sparse = solve_reduced_system(sparse.csr_matrix(R), y, reduction)
        assert np.allclose(x_dense, x_sparse, atol=1e-12)


class TestPaperSweepAgainstSeedSearch:
    @staticmethod
    def seed_binary_search(R, variances):
        """The seed implementation: binary search over full SVD ranks."""
        R = np.asarray(R, dtype=np.float64)
        n_cols = R.shape[1]
        ascending = np.lexsort((np.arange(len(variances)), variances))

        def rank(M):
            return 0 if M.shape[1] == 0 else int(np.linalg.matrix_rank(M))

        lo, hi = 0, n_cols
        if rank(R) == n_cols:
            return np.sort(ascending)
        lo = 1
        while lo < hi:
            mid = (lo + hi) // 2
            kept = ascending[mid:]
            if rank(R[:, kept]) == len(kept):
                hi = mid
            else:
                lo = mid + 1
        return np.sort(ascending[hi:])

    @pytest.mark.parametrize("seed", range(8))
    def test_sweep_matches_binary_search(self, seed):
        rng = np.random.default_rng(seed)
        m = int(rng.integers(8, 40))
        n = int(rng.integers(4, 30))
        R = random_binary(m, n, seed=seed + 100, density=0.3)
        v = rng.random(n)
        result = reduce_to_full_rank(R, v, strategy="paper")
        assert np.array_equal(
            result.kept_columns, self.seed_binary_search(R, v)
        )


class TestSolverEquivalence:
    @pytest.mark.parametrize("solver", ["auto", "qr"])
    def test_matches_seed_lstsq(self, solver, figure2):
        _, _, routing = figure2
        rng = np.random.default_rng(21)
        v = rng.random(routing.num_links)
        reduction = reduce_to_full_rank(routing.matrix, v, strategy="paper")
        y = -rng.random(routing.num_paths)
        fast = solve_reduced_system(routing.matrix, y, reduction, solver=solver)
        seed = solve_reduced_system(routing.matrix, y, reduction, solver="lstsq")
        assert np.allclose(fast, seed, atol=1e-9)

    def test_auto_falls_back_on_dependent_kept_set(self):
        # A hand-built reduction with dependent kept columns must still
        # produce the seed's minimum-norm-style answer, not garbage.
        from repro.core.reduction import ReductionResult

        R = np.zeros((4, 3))
        R[:, 0] = [1, 1, 0, 0]
        R[:, 1] = [1, 1, 0, 0]  # duplicate of column 0
        R[:, 2] = [0, 0, 1, 1]
        reduction = ReductionResult(
            kept_columns=np.array([0, 1, 2]),
            removed_columns=np.array([], dtype=np.int64),
            strategy="paper",
        )
        y = -np.ones(4)
        fast = solve_reduced_system(R, y, reduction, solver="auto")
        seed = solve_reduced_system(R, y, reduction, solver="lstsq")
        assert np.allclose(fast, seed, atol=1e-9)


class TestQRFactorizationObject:
    def test_downdate_matches_refactorization(self):
        A = random_matrix(25, 9, seed=22)
        factorization = QRFactorization.factorize(A, columns=range(9))
        for position in (0, 3, 8):
            down = factorization.remove_column(position)
            B = np.delete(A, position, axis=1)
            again = QRFactorization.factorize(B)
            assert down.columns == tuple(
                c for c in range(9) if c != position
            )
            assert np.allclose(down.q @ down.r, B, atol=1e-10)
            b = np.linspace(-1, 1, 25)
            assert np.allclose(down.solve(b), again.solve(b), atol=1e-9)

    def test_chained_downdates(self):
        A = random_matrix(15, 6, seed=23)
        factorization = QRFactorization.factorize(A, columns=range(6))
        down = factorization.remove_column(1).remove_column(3)
        kept = [0, 2, 3, 5]
        assert down.columns == tuple(kept)
        assert np.allclose(down.q @ down.r, A[:, kept], atol=1e-10)

    def test_householder_method_matches_lapack(self):
        A = random_matrix(30, 12, seed=24)
        b = random_matrix(30, 1, seed=25).ravel()
        lapack = QRFactorization.factorize(A, method="lapack")
        householder = QRFactorization.factorize(A, method="householder")
        assert np.allclose(lapack.solve(b), householder.solve(b), atol=1e-8)

    def test_multi_rhs_matches_column_loop(self):
        A = random_matrix(30, 12, seed=26)
        B = random_matrix(30, 7, seed=27)
        factorization = QRFactorization.factorize(A)
        X = factorization.solve(B)
        for j in range(B.shape[1]):
            assert np.allclose(X[:, j], factorization.solve(B[:, j]), atol=1e-12)


class TestBackSubstitutionFastPath:
    def test_lapack_path_matches_loop(self):
        U = np.triu(random_matrix(30, 30, seed=28)) + 5 * np.eye(30)
        x = np.arange(1.0, 31.0)
        assert np.allclose(back_substitution(U, U @ x), x, atol=1e-9)

    def test_degenerate_path_unchanged(self):
        U = np.array([[2.0, 1.0, 0.0], [0.0, 0.0, 3.0], [0.0, 0.0, 4.0]])
        b = np.array([2.0, 3.0, 4.0])
        x = back_substitution(U, b)
        assert x[1] == 0.0  # zero pivot -> zero component


class TestBuilderIncrementalEquivalence:
    @pytest.mark.parametrize("seed", range(3))
    def test_interleaved_adds_and_removes(self, seed):
        rng = np.random.default_rng(seed)
        num_links = 15
        builder = AugmentedMatrixBuilder(num_links)
        for _ in range(10):
            builder.add_path(rng.integers(0, num_links, size=rng.integers(1, 5)))
        for step in range(12):
            if builder.num_paths > 2 and rng.random() < 0.4:
                builder.remove_path(int(rng.integers(0, builder.num_paths)))
            else:
                builder.add_path(
                    rng.integers(0, num_links, size=rng.integers(1, 5))
                )
            built = builder.build()
            direct = intersecting_pairs(builder.routing_matrix())
            assert np.array_equal(
                built.matrix.toarray(), direct.matrix.toarray()
            )
            assert np.array_equal(built.pair_i, direct.pair_i)
            assert np.array_equal(built.pair_j, direct.pair_j)
