"""Tests for the dense linear-algebra kernels (cross-checked vs numpy)."""

import numpy as np
import pytest

from repro.core.linalg import (
    IncrementalColumnBasis,
    back_substitution,
    greedy_independent_columns,
    householder_qr,
    qr_column_rank,
    solve_least_squares_qr,
)


def random_matrix(m, n, seed):
    return np.random.default_rng(seed).normal(size=(m, n))


class TestHouseholderQR:
    @pytest.mark.parametrize("shape", [(5, 5), (10, 4), (30, 7)])
    def test_reconstruction(self, shape):
        A = random_matrix(*shape, seed=0)
        Q, R = householder_qr(A)
        assert np.allclose(Q @ R, A, atol=1e-10)

    def test_q_orthonormal(self):
        A = random_matrix(20, 6, seed=1)
        Q, _ = householder_qr(A)
        assert np.allclose(Q.T @ Q, np.eye(6), atol=1e-10)

    def test_r_upper_triangular(self):
        A = random_matrix(8, 8, seed=2)
        _, R = householder_qr(A)
        assert np.allclose(R, np.triu(R))

    def test_wide_matrix_rejected(self):
        with pytest.raises(ValueError):
            householder_qr(random_matrix(3, 5, seed=3))

    def test_zero_column_survives(self):
        A = random_matrix(6, 3, seed=4)
        A[:, 1] = 0.0
        Q, R = householder_qr(A)
        assert np.allclose(Q @ R, A, atol=1e-10)


class TestBackSubstitution:
    def test_solves_triangular_system(self):
        U = np.triu(random_matrix(6, 6, seed=5)) + 3 * np.eye(6)
        x = np.arange(1.0, 7.0)
        assert np.allclose(back_substitution(U, U @ x), x)

    def test_zero_pivot_gives_zero_component(self):
        U = np.array([[1.0, 2.0], [0.0, 0.0]])
        x = back_substitution(U, np.array([3.0, 0.0]))
        assert x[1] == 0.0
        assert x[0] == pytest.approx(3.0)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            back_substitution(np.ones((2, 3)), np.ones(2))


class TestLeastSquares:
    @pytest.mark.parametrize("shape", [(10, 3), (50, 10), (7, 7)])
    def test_matches_numpy_lstsq(self, shape):
        A = random_matrix(*shape, seed=6)
        b = random_matrix(shape[0], 1, seed=7).ravel()
        ours = solve_least_squares_qr(A, b)
        theirs, *_ = np.linalg.lstsq(A, b, rcond=None)
        assert np.allclose(ours, theirs, atol=1e-8)

    def test_exact_system(self):
        A = random_matrix(5, 5, seed=8)
        x = np.ones(5)
        assert np.allclose(solve_least_squares_qr(A, A @ x), x)


class TestRank:
    def test_full_rank(self):
        assert qr_column_rank(random_matrix(10, 4, seed=9)) == 4

    def test_deficient(self):
        A = random_matrix(10, 3, seed=10)
        B = np.hstack([A, A[:, :1] + A[:, 1:2]])
        assert qr_column_rank(B) == 3

    def test_matches_numpy(self, figure2):
        _, _, routing = figure2
        R = routing.to_dense()
        assert qr_column_rank(R) == np.linalg.matrix_rank(R)


class TestGreedyColumns:
    def test_spans_column_space(self):
        A = random_matrix(8, 4, seed=11)
        B = np.hstack([A, A @ random_matrix(4, 3, seed=12)])  # 3 dependent
        kept = greedy_independent_columns(B, list(range(7)))
        assert len(kept) == 4
        assert np.linalg.matrix_rank(B[:, kept]) == 4

    def test_priority_respected(self):
        A = np.eye(3)
        B = np.hstack([A, A])  # duplicates
        kept = greedy_independent_columns(B, [3, 4, 5, 0, 1, 2])
        assert kept == [3, 4, 5]

    def test_zero_column_skipped(self):
        A = np.zeros((3, 2))
        A[:, 1] = 1.0
        assert greedy_independent_columns(A, [0, 1]) == [1]

    def test_incremental_basis_rank(self):
        basis = IncrementalColumnBasis(dimension=5)
        rng = np.random.default_rng(13)
        added = sum(basis.try_add(rng.normal(size=5)) for _ in range(10))
        assert added == 5
        assert basis.rank == 5

    def test_basis_rejects_dependent(self):
        basis = IncrementalColumnBasis(dimension=4)
        v = np.array([1.0, 2.0, 3.0, 4.0])
        assert basis.try_add(v)
        assert not basis.try_add(2 * v)

    def test_dimension_validation(self):
        basis = IncrementalColumnBasis(dimension=3)
        with pytest.raises(ValueError):
            basis.try_add(np.ones(4))
