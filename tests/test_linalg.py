"""Tests for the dense linear-algebra kernels (cross-checked vs numpy)."""

import numpy as np
import pytest
from scipy import linalg as scipy_linalg

from repro.core.linalg import (
    IncrementalColumnBasis,
    QRFactorization,
    back_substitution,
    greedy_independent_columns,
    householder_qr,
    qr_column_rank,
    solve_least_squares_qr,
)


def random_matrix(m, n, seed):
    return np.random.default_rng(seed).normal(size=(m, n))


class TestHouseholderQR:
    @pytest.mark.parametrize("shape", [(5, 5), (10, 4), (30, 7)])
    def test_reconstruction(self, shape):
        A = random_matrix(*shape, seed=0)
        Q, R = householder_qr(A)
        assert np.allclose(Q @ R, A, atol=1e-10)

    def test_q_orthonormal(self):
        A = random_matrix(20, 6, seed=1)
        Q, _ = householder_qr(A)
        assert np.allclose(Q.T @ Q, np.eye(6), atol=1e-10)

    def test_r_upper_triangular(self):
        A = random_matrix(8, 8, seed=2)
        _, R = householder_qr(A)
        assert np.allclose(R, np.triu(R))

    def test_wide_matrix_rejected(self):
        with pytest.raises(ValueError):
            householder_qr(random_matrix(3, 5, seed=3))

    def test_zero_column_survives(self):
        A = random_matrix(6, 3, seed=4)
        A[:, 1] = 0.0
        Q, R = householder_qr(A)
        assert np.allclose(Q @ R, A, atol=1e-10)


class TestBackSubstitution:
    def test_solves_triangular_system(self):
        U = np.triu(random_matrix(6, 6, seed=5)) + 3 * np.eye(6)
        x = np.arange(1.0, 7.0)
        assert np.allclose(back_substitution(U, U @ x), x)

    def test_zero_pivot_gives_zero_component(self):
        U = np.array([[1.0, 2.0], [0.0, 0.0]])
        x = back_substitution(U, np.array([3.0, 0.0]))
        assert x[1] == 0.0
        assert x[0] == pytest.approx(3.0)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            back_substitution(np.ones((2, 3)), np.ones(2))


class TestLeastSquares:
    @pytest.mark.parametrize("shape", [(10, 3), (50, 10), (7, 7)])
    def test_matches_numpy_lstsq(self, shape):
        A = random_matrix(*shape, seed=6)
        b = random_matrix(shape[0], 1, seed=7).ravel()
        ours = solve_least_squares_qr(A, b)
        theirs, *_ = np.linalg.lstsq(A, b, rcond=None)
        assert np.allclose(ours, theirs, atol=1e-8)

    def test_exact_system(self):
        A = random_matrix(5, 5, seed=8)
        x = np.ones(5)
        assert np.allclose(solve_least_squares_qr(A, A @ x), x)


class TestRank:
    def test_full_rank(self):
        assert qr_column_rank(random_matrix(10, 4, seed=9)) == 4

    def test_deficient(self):
        A = random_matrix(10, 3, seed=10)
        B = np.hstack([A, A[:, :1] + A[:, 1:2]])
        assert qr_column_rank(B) == 3

    def test_matches_numpy(self, figure2):
        _, _, routing = figure2
        R = routing.to_dense()
        assert qr_column_rank(R) == np.linalg.matrix_rank(R)


class TestGreedyColumns:
    def test_spans_column_space(self):
        A = random_matrix(8, 4, seed=11)
        B = np.hstack([A, A @ random_matrix(4, 3, seed=12)])  # 3 dependent
        kept = greedy_independent_columns(B, list(range(7)))
        assert len(kept) == 4
        assert np.linalg.matrix_rank(B[:, kept]) == 4

    def test_priority_respected(self):
        A = np.eye(3)
        B = np.hstack([A, A])  # duplicates
        kept = greedy_independent_columns(B, [3, 4, 5, 0, 1, 2])
        assert kept == [3, 4, 5]

    def test_zero_column_skipped(self):
        A = np.zeros((3, 2))
        A[:, 1] = 1.0
        assert greedy_independent_columns(A, [0, 1]) == [1]

    def test_incremental_basis_rank(self):
        basis = IncrementalColumnBasis(dimension=5)
        rng = np.random.default_rng(13)
        added = sum(basis.try_add(rng.normal(size=5)) for _ in range(10))
        assert added == 5
        assert basis.rank == 5

    def test_basis_rejects_dependent(self):
        basis = IncrementalColumnBasis(dimension=4)
        v = np.array([1.0, 2.0, 3.0, 4.0])
        assert basis.try_add(v)
        assert not basis.try_add(2 * v)

    def test_dimension_validation(self):
        basis = IncrementalColumnBasis(dimension=3)
        with pytest.raises(ValueError):
            basis.try_add(np.ones(4))


class TestQRColumnUpdates:
    """Incremental column adds agree with a fresh QR to working precision."""

    def solve_gap(self, updated, fresh):
        rhs = np.linspace(-1.0, 1.0, updated.num_rows)
        return float(
            np.max(np.abs(updated.solve(rhs) - fresh.solve(rhs)))
        )

    @pytest.mark.parametrize("position", [0, 3, 6])
    @pytest.mark.parametrize("dtype", [np.float64, np.float32, np.int64])
    def test_insert_matches_fresh_qr(self, position, dtype):
        A = random_matrix(25, 7, seed=20)
        # The offered values may arrive in any dtype (routing columns are
        # 0/1 uint8); the update must treat them as float64.
        A[:, position] = A[:, position].astype(dtype)
        base = np.delete(A, position, axis=1)
        factorization = QRFactorization.factorize(
            base, columns=[c for c in range(7) if c != position]
        )
        updated = factorization.add_column(
            A[:, position].astype(dtype), position, position
        )
        assert updated.columns == tuple(range(7))
        assert np.allclose(updated.q @ updated.r, A, atol=1e-10)
        assert np.allclose(updated.q.T @ updated.q, np.eye(7), atol=1e-10)
        fresh = QRFactorization.factorize(A)
        assert self.solve_gap(updated, fresh) < 1e-8
        # The parent factorization is untouched (fresh-copy contract).
        assert np.allclose(factorization.q @ factorization.r, base, atol=1e-10)

    def test_grow_from_empty(self):
        A = random_matrix(10, 3, seed=21)
        factorization = QRFactorization.factorize(A[:, :0], columns=[])
        for j in range(3):
            factorization = factorization.add_column(A[:, j], j)
        assert factorization.columns == (0, 1, 2)
        assert np.allclose(factorization.q @ factorization.r, A, atol=1e-10)
        assert self.solve_gap(factorization, QRFactorization.factorize(A)) < 1e-8

    def test_insert_into_single_column(self):
        A = random_matrix(8, 2, seed=22)
        one = QRFactorization.factorize(A[:, 1:], columns=[1])
        both = one.add_column(A[:, 0], 0, 0)
        assert both.columns == (0, 1)
        assert np.allclose(both.q @ both.r, A, atol=1e-10)

    def test_dependent_column_rejected(self):
        A = random_matrix(12, 4, seed=23)
        factorization = QRFactorization.factorize(A)
        dependent = A @ np.array([1.0, -2.0, 0.5, 3.0])
        with pytest.raises(scipy_linalg.LinAlgError):
            factorization.add_column(dependent, 4)
        with pytest.raises(scipy_linalg.LinAlgError):
            factorization.add_column(np.zeros(12), 4)

    def test_independent_column_onto_rank_deficient_base(self):
        A = random_matrix(10, 3, seed=24)
        A[:, 2] = A[:, 0] + A[:, 1]  # deficient base, but spans only 2 dims
        factorization = QRFactorization.factorize(A)
        assert not factorization.full_rank
        extra = random_matrix(10, 1, seed=25)[:, 0]
        grown = factorization.add_column(extra, 3)
        stacked = np.column_stack([A, extra])
        assert np.allclose(grown.q @ grown.r, stacked, atol=1e-10)

    def test_validation(self):
        factorization = QRFactorization.factorize(random_matrix(6, 2, seed=26))
        with pytest.raises(ValueError):
            factorization.add_column(np.ones(5), 2)  # wrong length
        with pytest.raises(IndexError):
            factorization.add_column(np.ones(6), 2, position=3)

    def test_grow_then_shrink_round_trip(self):
        A = random_matrix(20, 6, seed=27)
        base = QRFactorization.factorize(A[:, :5], columns=range(5))
        for position in (0, 2, 5):
            grown = base.add_column(A[:, 5], 5, position)
            back = grown.remove_column(position)
            assert back.columns == base.columns
            assert self.solve_gap(back, base) < 1e-8


class TestQRRowAppends:
    def test_append_matches_fresh_qr(self):
        A = random_matrix(18, 5, seed=30)
        for split in (17, 13):
            factorization = QRFactorization.factorize(A[:split])
            appended = factorization.append_rows(A[split:])
            fresh = QRFactorization.factorize(A)
            assert appended.columns == fresh.columns
            assert np.allclose(appended.q @ appended.r, A, atol=1e-10)
            assert np.allclose(
                appended.q.T @ appended.q, np.eye(5), atol=1e-10
            )
            rhs = np.linspace(0.0, 1.0, 18)
            assert np.allclose(
                appended.solve(rhs), fresh.solve(rhs), atol=1e-8
            )

    def test_single_row_as_1d(self):
        A = random_matrix(9, 4, seed=31)
        appended = QRFactorization.factorize(A[:8]).append_rows(A[8])
        assert np.allclose(appended.q @ appended.r, A, atol=1e-10)

    def test_zero_rows_returns_self(self):
        factorization = QRFactorization.factorize(random_matrix(7, 3, seed=32))
        assert factorization.append_rows(np.empty((0, 3))) is factorization

    def test_width_validated(self):
        factorization = QRFactorization.factorize(random_matrix(7, 3, seed=33))
        with pytest.raises(ValueError):
            factorization.append_rows(np.ones((2, 4)))
