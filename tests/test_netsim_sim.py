"""The discrete-event packet simulator and its LossProcess seam."""

import math

import numpy as np
import pytest

from repro.lossmodel import CongestionLossProcess
from repro.netsim.sim import (
    AIMDController,
    Clock,
    CongestionSimulator,
    EventScheduler,
    Host,
    OnOffCBR,
    Pacer,
    ProbeTap,
    RateProber,
    SimLink,
    TrafficConfig,
)

CONGESTION = TrafficConfig(kind="congestion")


class TestClockAndScheduler:
    def test_clock_is_monotonic(self):
        clock = Clock()
        clock.advance_to(2.0)
        assert clock.now == 2.0
        with pytest.raises(ValueError):
            clock.advance_to(1.0)

    def test_events_fire_in_time_order(self):
        sched = EventScheduler()
        fired = []
        sched.schedule(3.0, fired.append, "c")
        sched.schedule(1.0, fired.append, "a")
        sched.schedule(2.0, fired.append, "b")
        sched.run_until_idle()
        assert fired == ["a", "b", "c"]
        assert sched.events_dispatched == 3

    def test_simultaneous_events_fire_in_scheduling_order(self):
        """Tie-break is the push sequence — the determinism keystone."""
        sched = EventScheduler()
        fired = []
        for tag in range(10):
            sched.schedule(1.0, fired.append, tag)
        sched.run_until_idle()
        assert fired == list(range(10))

    def test_horizon_is_inclusive_and_heap_reusable(self):
        sched = EventScheduler()
        fired = []
        sched.schedule(1.0, fired.append, "early")
        sched.schedule(2.0, fired.append, "at")
        sched.schedule(2.5, fired.append, "late")
        sched.run_until(2.0)
        assert fired == ["early", "at"] and len(sched) == 1
        sched.run_until_idle()
        assert fired == ["early", "at", "late"]

    def test_scheduling_into_the_past_raises(self):
        sched = EventScheduler()
        sched.schedule(5.0, lambda: None)
        sched.run_until_idle()
        with pytest.raises(ValueError):
            sched.schedule(4.0, lambda: None)


class TestPacer:
    def test_starts_full_then_paces(self):
        pacer = Pacer(rate=2.0, bucket=1.0)
        assert pacer.try_send(0.0)          # bucket starts full
        assert not pacer.try_send(0.0)      # and is now empty
        assert pacer.ready_time(0.0) == pytest.approx(0.5)
        assert pacer.try_send(0.5)

    def test_bucket_caps_accrual(self):
        pacer = Pacer(rate=10.0, bucket=2.0)
        assert pacer.tokens(100.0) == 2.0

    def test_zero_rate_never_ready(self):
        pacer = Pacer(rate=0.0, bucket=1.0)
        assert pacer.try_send(0.0)
        assert pacer.ready_time(0.0) == float("inf")

    def test_ready_time_always_advances(self):
        """Regression: a sub-epsilon deficit must not freeze the clock.

        With a deficit smaller than one float ulp of `now`,
        ``now + deficit/rate == now`` in float64; hosts rescheduling at
        ``ready_time`` would then livelock at a frozen timestamp.
        """
        now = 529.041046
        pacer = Pacer(rate=40.0, bucket=2.0, start=now)
        # deficit above try_send's 1e-12 slack, but deficit/rate under
        # half an ulp of `now`, so now + deficit/rate rounds back to now
        pacer._tokens = 1.0 - 2e-12
        assert not pacer.try_send(now)
        ready = pacer.ready_time(now)
        assert ready == math.nextafter(now, math.inf)

    def test_ready_time_never_returns_now_while_refusing(self):
        """Any refused send must get a strictly later retry time."""
        now = 529.041046
        for deficit in (2e-12, 1e-11, 1e-9, 1e-4):
            pacer = Pacer(rate=40.0, bucket=2.0, start=now)
            pacer._tokens = 1.0 - deficit
            if pacer.try_send(now):
                continue
            assert pacer.ready_time(now) > now

    def test_validation(self):
        with pytest.raises(ValueError):
            Pacer(rate=-1.0)
        with pytest.raises(ValueError):
            Pacer(rate=1.0, bucket=0.0)


class TestSimLink:
    def _link(self, sched, buffer=2, rate=1.0, delay=0.0, **cbs):
        return SimLink(
            index=0, rate=rate, delay=delay, buffer=buffer,
            scheduler=sched, **cbs,
        )

    def _packet(self, link, seq=0, size=1.0, probe_slot=None):
        from repro.netsim.sim import Packet

        return Packet(
            flow_id=0, sequence=seq, route=(link,), sent_at=0.0,
            size=size, probe_slot=probe_slot,
        )

    def test_overflow_drops_and_reports(self):
        sched = EventScheduler()
        dropped = []
        link = self._link(
            sched, buffer=2, on_drop=lambda p, l, t: dropped.append(p.sequence)
        )
        assert link.enqueue(self._packet(link, 0))
        assert link.enqueue(self._packet(link, 1))
        assert not link.enqueue(self._packet(link, 2))  # buffer full
        assert dropped == [2]
        assert link.drops == 1 and link.arrivals == 3

    def test_fifo_service_and_delivery_order(self):
        sched = EventScheduler()
        delivered = []
        link = self._link(
            sched, buffer=10, rate=2.0, delay=0.25,
            on_deliver=lambda p, t: delivered.append((p.sequence, t)),
        )
        for seq in range(3):
            link.enqueue(self._packet(link, seq))
        sched.run_until_idle()
        assert [seq for seq, _ in delivered] == [0, 1, 2]
        # service at 1/rate per unit packet, plus propagation
        assert delivered[0][1] == pytest.approx(0.5 + 0.25)
        assert delivered[-1][1] == pytest.approx(1.5 + 0.25)
        assert link.served == 3

    def test_buffer_frees_as_service_progresses(self):
        sched = EventScheduler()
        link = self._link(sched, buffer=1, rate=1.0)
        assert link.enqueue(self._packet(link, 0))
        assert not link.enqueue(self._packet(link, 1))
        sched.run_until(1.0)  # head departs
        assert link.enqueue(self._packet(link, 2))

    def test_validation(self):
        sched = EventScheduler()
        with pytest.raises(ValueError):
            self._link(sched, rate=0.0)
        with pytest.raises(ValueError):
            self._link(sched, buffer=0)


class TestOnOffCBR:
    def test_calibration_arithmetic(self):
        cc = OnOffCBR.for_target_loss(
            0.05, capacity=20.0, buffer=12, overload_factor=2.0,
            burst_slots=3.0, overflow_occupancy=0.75,
        )
        fill = 12 / 20.0
        assert cc.rate == pytest.approx(40.0)
        assert cc.mean_on == pytest.approx(fill + 3.0)
        duty = 0.05 / 0.75
        assert cc.mean_off == pytest.approx(3.0 / duty - cc.mean_on)

    def test_duty_cycle_is_capped(self):
        cc = OnOffCBR.for_target_loss(0.9, capacity=20.0, buffer=12)
        assert cc.mean_off >= 1e-3

    def test_phase_walk_is_deterministic(self):
        rates = []
        for _ in range(2):
            cc = OnOffCBR(on_rate=40.0, mean_on=2.0, mean_off=5.0)
            cc.bind(np.random.default_rng(7))
            rates.append([cc.pacing_rate(t / 4) for t in range(200)])
        assert rates[0] == rates[1]
        assert 0.0 in rates[0] and 40.0 in rates[0]

    def test_requires_bind(self):
        cc = OnOffCBR(on_rate=40.0, mean_on=2.0, mean_off=5.0)
        with pytest.raises(RuntimeError):
            cc.pacing_rate(0.0)
        with pytest.raises(ValueError):
            cc.bind(None)

    def test_validation(self):
        with pytest.raises(ValueError):
            OnOffCBR.for_target_loss(0.0, capacity=20.0, buffer=12)
        with pytest.raises(ValueError):
            OnOffCBR.for_target_loss(0.1, capacity=20.0, buffer=12,
                                     overload_factor=1.0)
        with pytest.raises(ValueError):
            OnOffCBR(on_rate=40.0, mean_on=0.0, mean_off=1.0)


class TestControllers:
    def _packet(self, sent_at=0.0, size=1.0):
        from repro.netsim.sim import Packet

        sched = EventScheduler()
        link = SimLink(index=0, rate=1.0, delay=0.0, buffer=1, scheduler=sched)
        return Packet(
            flow_id=0, sequence=0, route=(link,), sent_at=sent_at, size=size
        )

    def test_aimd_sawtooth(self):
        cc = AIMDController(initial_rate=4.0, min_rate=0.1, beta=0.5)
        cc.on_loss(10.0, self._packet())
        assert cc.rate == pytest.approx(2.0)
        # refractory: a second loss within one RTT does not halve again
        cc.on_loss(10.1, self._packet())
        assert cc.rate == pytest.approx(2.0) and cc.backoffs == 1
        before = cc.rate
        cc.on_ack(12.0, self._packet(sent_at=11.0), rtt=1.0)
        assert cc.rate > before

    def test_aimd_respects_max_rate(self):
        cc = AIMDController(initial_rate=5.0, max_rate=5.0)
        for t in range(20):
            cc.on_ack(float(t), self._packet(), rtt=1.0)
        assert cc.rate == 5.0

    def test_rate_prober_adopts_probe_estimate(self):
        cc = RateProber(initial_rate=2.0, min_probe_packets=2,
                        min_probe_duration=0.5, drain_factor=1.0)
        assert cc.pacing_rate(0.0) == pytest.approx(6.0)  # probing at 3x
        for i in range(3):
            p = self._packet(sent_at=0.5 * i)
            cc.on_sent(0.5 * i, p)
            cc.on_ack(0.5 * i + 0.25, p, rtt=0.25)
        assert cc.state == 0  # back to CRUISE
        assert cc.probes_completed == 1
        assert cc.min_rate <= cc.rate <= cc.max_rate

    def test_rate_prober_backs_off_on_loss(self):
        cc = RateProber(initial_rate=10.0, loss_beta=0.5)
        cc.on_loss(5.0, self._packet())
        assert cc.rate == pytest.approx(5.0)


class TestHostAndTap:
    def test_cbr_host_paces_at_rate(self):
        from repro.netsim.sim import ConstantBitRate

        sched = EventScheduler()
        delivered = []
        link = SimLink(
            index=0, rate=100.0, delay=0.0, buffer=50, scheduler=sched,
            on_deliver=lambda p, t: delivered.append(p.sequence),
        )
        host = Host(
            flow_id=0, route=(link,), cc=ConstantBitRate(2.0),
            scheduler=sched, stop_time=10.0,
        )
        host.start()
        sched.run_until(20.0)
        # 2 packets/slot over 10 slots, plus the initial bucket burst
        assert 18 <= host.packets_sent <= 23
        assert delivered == sorted(delivered)

    def test_probe_tap_emits_one_probe_per_slot(self):
        sched = EventScheduler()
        slots = []
        link = SimLink(
            index=0, rate=100.0, delay=0.0, buffer=50, scheduler=sched,
            on_deliver=lambda p, t: slots.append(p.probe_slot),
        )
        ProbeTap(
            flow_id=-1, link=link, num_probes=8, scheduler=sched, phase=0.25
        ).start()
        sched.run_until_idle()
        assert slots == list(range(8))


class TestTrafficConfig:
    def test_round_trip(self):
        cfg = TrafficConfig(kind="congestion", buffer_packets=8, slot_ms=5.0)
        assert TrafficConfig.from_dict(cfg.to_dict()) == cfg

    def test_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown TrafficConfig"):
            TrafficConfig.from_dict({"kind": "analytic", "bogus": 1})

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            TrafficConfig(kind="wireless")
        with pytest.raises(ValueError):
            TrafficConfig(buffer_packets=0)
        with pytest.raises(ValueError):
            TrafficConfig(overload_factor=1.0)
        with pytest.raises(ValueError):
            TrafficConfig(cross_rate_fraction=0.5, cross_max_fraction=0.4)

    def test_is_congestion(self):
        assert not TrafficConfig().is_congestion
        assert TrafficConfig(kind="congestion").is_congestion


class TestCongestionSimulator:
    PATHS = [(0, 1), (0, 2), (3,)]

    def _rates(self, num_links=5):
        rates = np.zeros(num_links)
        rates[1] = 0.08
        return rates

    def test_trace_shapes_and_active_links(self):
        sim = CongestionSimulator(self.PATHS, 5, CONGESTION)
        assert list(sim.active_links) == [0, 1, 2, 3]
        trace = sim.run_snapshot(self._rates(), 60, seed=3)
        assert trace.drops.shape == (4, 60)
        assert trace.delays_ms.shape == (4, 60)
        assert trace.num_probes == 60
        assert trace.events > 0 and trace.packets_forwarded > 0

    def test_driven_link_loses_and_quiet_links_do_not(self):
        sim = CongestionSimulator(self.PATHS, 5, CONGESTION)
        fractions = np.zeros(4)
        for seed in range(5):
            fractions += sim.run_snapshot(self._rates(), 400, seed).loss_fractions()
        fractions /= 5
        assert fractions[1] > 0.02          # the calibrated driver bites
        assert fractions[[0, 2, 3]].max() < 0.01  # cross traffic alone is mild

    def test_same_seed_is_bit_identical(self):
        sim = CongestionSimulator(self.PATHS, 5, CONGESTION)
        a = sim.run_snapshot(self._rates(), 200, seed=11)
        b = sim.run_snapshot(self._rates(), 200, seed=11)
        assert np.array_equal(a.drops, b.drops)
        assert np.array_equal(a.delays_ms, b.delays_ms)
        assert a.events == b.events

    def test_different_seeds_differ(self):
        sim = CongestionSimulator(self.PATHS, 5, CONGESTION)
        a = sim.run_snapshot(self._rates(), 400, seed=11)
        b = sim.run_snapshot(self._rates(), 400, seed=12)
        assert not np.array_equal(a.drops, b.drops)

    def test_expand_drops_pads_inactive_rows(self):
        sim = CongestionSimulator(self.PATHS, 6, CONGESTION)
        trace = sim.run_snapshot(np.zeros(6), 50, seed=0)
        full = sim.expand_drops(trace)
        assert full.shape == (6, 50)
        assert not full[[4, 5]].any()

    def test_validation(self):
        with pytest.raises(ValueError):
            CongestionSimulator([], 5, CONGESTION)
        with pytest.raises(ValueError):
            CongestionSimulator([(0, 7)], 5, CONGESTION)
        sim = CongestionSimulator(self.PATHS, 5, CONGESTION)
        with pytest.raises(ValueError):
            sim.run_snapshot(np.zeros(3), 50, seed=0)
        with pytest.raises(ValueError):
            sim.run_snapshot(np.zeros(5), 0, seed=0)


class TestCongestionLossProcess:
    PATHS = [(0, 1), (2,)]

    def test_rejects_analytic_traffic(self):
        with pytest.raises(ValueError, match="kind='congestion'"):
            CongestionLossProcess(self.PATHS, 4, traffic=TrafficConfig())

    def test_shape_and_fallback_rows(self):
        process = CongestionLossProcess(self.PATHS, 4)
        rates = np.array([0.0, 0.1, 0.0, 0.5])
        states = process.sample_states(rates, 2000, seed=0)
        assert states.shape == (4, 2000) and states.dtype == bool
        # link 3 is on no path: Bernoulli fallback at its assigned rate
        assert states[3].mean() == pytest.approx(0.5, abs=0.05)
        assert not states[0].any() or states[0].mean() < 0.02

    def test_same_seed_is_byte_identical(self):
        process = CongestionLossProcess(self.PATHS, 4)
        rates = np.array([0.0, 0.1, 0.0, 0.3])
        a = process.sample_states(rates, 300, seed=42)
        b = process.sample_states(rates, 300, seed=42)
        assert a.tobytes() == b.tobytes()

    def test_collect_traces(self):
        process = CongestionLossProcess(self.PATHS, 4)
        rates = np.zeros(4)
        process.sample_states(rates, 50, seed=1)
        assert process.last_trace is not None and process.traces == []
        process.collect_traces = True
        process.sample_states(rates, 50, seed=1)
        process.sample_states(rates, 50, seed=2)
        assert len(process.traces) == 2

    def test_loss_fraction_streaming_matches_states(self):
        process = CongestionLossProcess(self.PATHS, 4)
        rates = np.array([0.05, 0.1, 0.0, 0.2])
        fractions = process.sample_loss_fractions(rates, 500, seed=9)
        states = process.sample_states(rates, 500, seed=9)
        assert np.array_equal(fractions, states.mean(axis=1))


class TestEndToEndCampaign:
    def test_probing_simulator_runs_on_congestion_process(self):
        from repro.api import EstimatorSpec, Scenario
        from repro.experiments import scale_params
        from repro.utils.rng import derive_seed

        scenario = Scenario(
            topology="tree",
            params=scale_params("tiny").sized(
                tree_nodes=20, num_end_hosts=5, snapshots=4, probes=120
            ),
            num_training=4,
            traffic=TrafficConfig(kind="congestion"),
            estimators=(EstimatorSpec("lia"),),
        )
        prepared = scenario.prepare(3)
        fractions = []
        for _ in range(2):
            simulator = scenario.build_simulator(prepared)
            campaign = simulator.run_campaign(
                scenario.campaign_length,
                prepared.routing,
                seed=derive_seed(3, scenario.campaign_salt),
            )
            fractions.append(
                np.concatenate(
                    [s.realized_loss_fractions for s in campaign.snapshots]
                )
            )
        # campaign-level determinism: same seed, byte-identical realisations
        assert fractions[0].tobytes() == fractions[1].tobytes()

    def test_congestion_scenario_detects_congested_links(self):
        from repro.api import EstimatorSpec, Scenario
        from repro.experiments import scale_params

        scenario = Scenario(
            topology="tree",
            params=scale_params("tiny").sized(
                tree_nodes=25, num_end_hosts=6, snapshots=8, probes=300
            ),
            num_training=8,
            traffic=TrafficConfig(kind="congestion"),
            estimators=(EstimatorSpec("lia"),),
        )
        outcome = scenario.run(seed=0)
        detection = outcome.evaluation("lia").detection
        assert detection.detection_rate == pytest.approx(1.0)
        assert detection.false_positive_rate == pytest.approx(0.0)
        # the campaign carries real (non-degenerate) loss realisations
        assert any(
            s.realized_loss_fractions.max() > 0
            for s in outcome.campaign.snapshots
        )
