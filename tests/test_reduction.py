"""Tests for phase-2 full-rank reduction and the reduced solve."""

import numpy as np
import pytest

from repro.core.reduction import (
    reduce_to_full_rank,
    solve_reduced_system,
)


def naive_paper_loop(R, variances):
    """Reference implementation: literally drop the smallest until full rank."""
    R = np.asarray(R, dtype=float)
    order = np.lexsort((np.arange(len(variances)), variances))
    kept = list(range(R.shape[1]))
    pointer = 0
    def full_rank(cols):
        if not cols:
            return True
        sub = R[:, cols]
        return np.linalg.matrix_rank(sub) == len(cols)
    while not full_rank(kept):
        victim = order[pointer]
        pointer += 1
        kept.remove(victim)
    return sorted(kept)


class TestPaperStrategy:
    def test_matches_naive_loop(self, figure2):
        _, _, routing = figure2
        rng = np.random.default_rng(0)
        for trial in range(5):
            v = rng.random(routing.num_links)
            result = reduce_to_full_rank(routing.matrix, v, strategy="paper")
            assert result.kept_columns.tolist() == naive_paper_loop(
                routing.matrix, v
            )

    def test_already_full_rank_keeps_all(self):
        R = np.eye(4)
        v = np.array([0.1, 0.2, 0.3, 0.4])
        result = reduce_to_full_rank(R, v, strategy="paper")
        assert result.num_kept == 4


class TestAllStrategies:
    @pytest.mark.parametrize("strategy", ("gap", "paper", "greedy"))
    def test_result_full_column_rank(self, figure2, strategy):
        _, _, routing = figure2
        v = np.random.default_rng(1).random(routing.num_links)
        result = reduce_to_full_rank(routing.matrix, v, strategy=strategy)
        sub = routing.to_dense()[:, result.kept_columns]
        assert np.linalg.matrix_rank(sub) == result.num_kept

    def test_threshold_full_column_rank(self, figure2):
        _, _, routing = figure2
        v = np.random.default_rng(2).random(routing.num_links)
        result = reduce_to_full_rank(
            routing.matrix, v, strategy="threshold", variance_cutoff=0.3
        )
        sub = routing.to_dense()[:, result.kept_columns]
        assert np.linalg.matrix_rank(sub) == result.num_kept

    def test_threshold_requires_cutoff(self, figure2):
        _, _, routing = figure2
        v = np.ones(routing.num_links)
        with pytest.raises(ValueError, match="cutoff"):
            reduce_to_full_rank(routing.matrix, v, strategy="threshold")

    def test_threshold_keeps_only_above_cutoff(self, figure2):
        _, _, routing = figure2
        v = np.full(routing.num_links, 1e-9)
        v[2] = 1.0
        result = reduce_to_full_rank(
            routing.matrix, v, strategy="threshold", variance_cutoff=0.5
        )
        assert result.kept_columns.tolist() == [2]

    def test_threshold_empty_keep_is_legal(self, figure2):
        _, _, routing = figure2
        v = np.zeros(routing.num_links)
        result = reduce_to_full_rank(
            routing.matrix, v, strategy="threshold", variance_cutoff=0.5
        )
        assert result.num_kept == 0

    def test_greedy_keeps_maximal_set(self, figure2):
        _, _, routing = figure2
        v = np.random.default_rng(3).random(routing.num_links)
        greedy = reduce_to_full_rank(routing.matrix, v, strategy="greedy")
        paper = reduce_to_full_rank(routing.matrix, v, strategy="paper")
        assert greedy.num_kept >= paper.num_kept
        assert greedy.num_kept == np.linalg.matrix_rank(routing.to_dense())

    def test_high_variance_columns_survive(self, figure2):
        """Congested (high-variance) columns are never the ones removed."""
        _, _, routing = figure2
        v = np.full(routing.num_links, 1e-8)
        v[[0, 3]] = 1.0  # two independent congested columns
        for strategy in ("gap", "paper", "greedy"):
            result = reduce_to_full_rank(routing.matrix, v, strategy=strategy)
            assert {0, 3} <= set(result.kept_columns.tolist())

    def test_unknown_strategy(self, figure2):
        _, _, routing = figure2
        with pytest.raises(ValueError, match="unknown strategy"):
            reduce_to_full_rank(
                routing.matrix, np.ones(routing.num_links), strategy="nope"
            )

    def test_shape_validation(self, figure2):
        _, _, routing = figure2
        with pytest.raises(ValueError, match="one variance per column"):
            reduce_to_full_rank(routing.matrix, np.ones(3))


class TestGapStrategy:
    def test_clean_two_class_spectrum(self, figure2):
        _, _, routing = figure2
        v = np.full(routing.num_links, 1e-7)
        v[[1, 4, 6]] = 1e-3
        result = reduce_to_full_rank(routing.matrix, v, strategy="gap")
        assert set(result.kept_columns.tolist()) == {1, 4, 6}

    def test_noise_floor_immunity(self, figure2):
        """A stray near-zero variance must not hijack the gap."""
        _, _, routing = figure2
        v = np.full(routing.num_links, 1e-7)
        v[[1, 4]] = 1e-3
        v[5] = 1e-17  # would be the largest log-gap without the clamp
        result = reduce_to_full_rank(routing.matrix, v, strategy="gap")
        assert set(result.kept_columns.tolist()) == {1, 4}


class TestReducedSolve:
    def test_exact_recovery_when_all_kept(self, figure2):
        _, _, routing = figure2
        rng = np.random.default_rng(4)
        R = routing.to_dense()
        v = rng.random(routing.num_links)
        reduction = reduce_to_full_rank(routing.matrix, v, strategy="greedy")
        x_true = np.zeros(routing.num_links)
        x_true[reduction.kept_columns] = -rng.random(reduction.num_kept) * 0.1
        y = R @ x_true
        x_hat = solve_reduced_system(routing.matrix, y, reduction)
        assert np.allclose(x_hat, x_true, atol=1e-10)

    def test_removed_links_get_zero_loss(self, figure2):
        _, _, routing = figure2
        v = np.full(routing.num_links, 1e-9)
        v[0] = 1.0
        reduction = reduce_to_full_rank(
            routing.matrix, v, strategy="threshold", variance_cutoff=0.5
        )
        y = -0.1 * np.ones(routing.num_paths)
        x = solve_reduced_system(routing.matrix, y, reduction)
        removed = reduction.removed_columns
        assert np.allclose(x[removed], 0.0)

    def test_log_rates_clipped_non_positive(self, figure2):
        _, _, routing = figure2
        v = np.ones(routing.num_links)
        reduction = reduce_to_full_rank(routing.matrix, v, strategy="greedy")
        y = +0.5 * np.ones(routing.num_paths)  # impossible positive logs
        x = solve_reduced_system(routing.matrix, y, reduction)
        assert (x <= 0).all()

    def test_qr_solver_matches_lstsq(self, figure2):
        _, _, routing = figure2
        rng = np.random.default_rng(5)
        v = rng.random(routing.num_links)
        reduction = reduce_to_full_rank(routing.matrix, v, strategy="paper")
        y = -rng.random(routing.num_paths)
        a = solve_reduced_system(routing.matrix, y, reduction, solver="lstsq")
        b = solve_reduced_system(routing.matrix, y, reduction, solver="qr")
        assert np.allclose(a, b, atol=1e-8)

    def test_misshaped_y_rejected(self, figure2):
        _, _, routing = figure2
        reduction = reduce_to_full_rank(
            routing.matrix, np.ones(routing.num_links), strategy="greedy"
        )
        with pytest.raises(ValueError):
            solve_reduced_system(routing.matrix, np.ones(2), reduction)
