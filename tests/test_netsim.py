"""Tests for the measurement-plane substrates (addressing, AS, traceroute)."""

import numpy as np
import pytest

from repro.netsim import (
    AsMapper,
    HostAllocator,
    LongestPrefixTrie,
    Prefix,
    PrefixAllocator,
    TracerouteConfig,
    TracerouteSimulator,
    build_address_plan,
    build_measured_topology,
    classify_congested_columns,
    format_ipv4,
    measure_topology,
    parse_ipv4,
    resolve_aliases,
)
from repro.topology.generators import planetlab_like, random_tree
from repro.topology.graph import build_paths
from repro.topology.routing import RoutingMatrix


class TestAddressing:
    def test_format_parse_round_trip(self):
        for text in ("10.0.0.1", "172.16.254.3", "255.255.255.255", "0.0.0.0"):
            assert format_ipv4(parse_ipv4(text)) == text

    def test_parse_rejects_garbage(self):
        for bad in ("1.2.3", "1.2.3.4.5", "256.0.0.1", "a.b.c.d"):
            with pytest.raises(ValueError):
                parse_ipv4(bad)

    def test_prefix_contains(self):
        prefix = Prefix(parse_ipv4("10.1.0.0"), 16)
        assert prefix.contains(parse_ipv4("10.1.200.3"))
        assert not prefix.contains(parse_ipv4("10.2.0.1"))

    def test_prefix_host_bits_rejected(self):
        with pytest.raises(ValueError):
            Prefix(parse_ipv4("10.0.0.1"), 16)

    def test_allocator_disjoint(self):
        allocator = PrefixAllocator()
        a, b = allocator.allocate(), allocator.allocate()
        assert not a.contains(b.network)
        assert not b.contains(a.network)

    def test_host_allocator(self):
        hosts = HostAllocator(Prefix(parse_ipv4("10.3.0.0"), 24))
        first = hosts.allocate()
        assert format_ipv4(first) == "10.3.0.1"
        seen = {first}
        for _ in range(100):
            addr = hosts.allocate()
            assert addr not in seen
            seen.add(addr)

    def test_host_exhaustion(self):
        hosts = HostAllocator(Prefix(parse_ipv4("10.3.0.0"), 30))
        hosts.allocate()
        hosts.allocate()
        with pytest.raises(RuntimeError):
            hosts.allocate()


class TestTrie:
    def test_longest_match_wins(self):
        trie = LongestPrefixTrie()
        trie.insert(Prefix(parse_ipv4("10.0.0.0"), 8), "coarse")
        trie.insert(Prefix(parse_ipv4("10.1.0.0"), 16), "fine")
        assert trie.lookup(parse_ipv4("10.1.2.3")) == "fine"
        assert trie.lookup(parse_ipv4("10.9.2.3")) == "coarse"

    def test_miss_returns_none(self):
        trie = LongestPrefixTrie()
        trie.insert(Prefix(parse_ipv4("10.0.0.0"), 8), 1)
        assert trie.lookup(parse_ipv4("11.0.0.1")) is None

    def test_default_route(self):
        trie = LongestPrefixTrie()
        trie.insert(Prefix(0, 0), "default")
        assert trie.lookup(parse_ipv4("200.1.2.3")) == "default"

    def test_items_round_trip(self):
        trie = LongestPrefixTrie()
        prefixes = [
            (Prefix(parse_ipv4("10.0.0.0"), 8), 1),
            (Prefix(parse_ipv4("10.128.0.0"), 9), 2),
        ]
        for p, v in prefixes:
            trie.insert(p, v)
        assert sorted(str(p) for p, _ in trie.items()) == sorted(
            str(p) for p, _ in prefixes
        )
        assert len(trie) == 2


class TestAsMapping:
    def test_plan_assigns_every_node(self):
        topo = planetlab_like(num_sites=5, seed=1)
        plan = build_address_plan(topo)
        assert set(plan.node_address) == set(topo.as_of_node)

    def test_mapper_resolves_to_own_as(self):
        topo = planetlab_like(num_sites=5, seed=2)
        mapper, plan = AsMapper.from_topology(topo)
        for node, asn in topo.as_of_node.items():
            assert mapper.asn_of(plan.address_of(node)) == asn

    def test_inter_as_classification(self):
        topo = planetlab_like(num_sites=5, seed=3)
        mapper, plan = AsMapper.from_topology(topo)
        for link in topo.network.links:
            expected = topo.as_of_node[link.tail] != topo.as_of_node[link.head]
            got = mapper.link_is_inter_as(
                plan.address_of(link.tail), plan.address_of(link.head)
            )
            assert got == expected

    def test_unannotated_topology_rejected(self):
        topo = random_tree(num_nodes=20, seed=1)
        with pytest.raises(ValueError, match="AS annotations"):
            build_address_plan(topo)

    def test_breakdown_counts(self):
        topo = planetlab_like(num_sites=5, seed=4)
        paths = build_paths(topo.network, topo.beacons, topo.destinations)
        routing = RoutingMatrix.from_paths(paths)
        mapper, plan = AsMapper.from_topology(topo)
        breakdown = classify_congested_columns(
            list(range(routing.num_links)), routing, mapper, plan
        )
        assert breakdown.total == routing.num_links
        assert 0 < breakdown.inter_as < routing.num_links


class TestTraceroute:
    @pytest.fixture(scope="class")
    def setup(self):
        topo = planetlab_like(num_sites=8, seed=5)
        paths = build_paths(topo.network, topo.beacons, topo.destinations)
        sim = TracerouteSimulator(
            topo.network, end_hosts=topo.end_hosts, seed=6
        )
        return topo, paths, sim

    def test_hosts_always_respond(self, setup):
        topo, _, sim = setup
        assert all(sim.responds(h) for h in topo.end_hosts)

    def test_non_response_rate_plausible(self, setup):
        topo, _, sim = setup
        routers = [
            n for n in topo.network.nodes() if n not in set(topo.end_hosts)
        ]
        rate = np.mean([not sim.responds(r) for r in routers])
        assert 0.0 <= rate <= 0.25

    def test_multi_interface_addresses_differ(self, setup):
        topo, _, sim = setup
        multi = [n for n in topo.network.nodes() if sim.is_multi_interface(n)]
        if not multi:
            pytest.skip("no multi-interface router drawn at this seed")
        node = multi[0]
        neighbors = [link.tail for link in topo.network.in_links(node)]
        addresses = {sim.interface_address(node, nb) for nb in neighbors[:3]}
        assert len(addresses) == min(3, len(neighbors))

    def test_single_interface_stable(self, setup):
        topo, _, sim = setup
        single = [
            n for n in topo.network.nodes() if not sim.is_multi_interface(n)
        ]
        node = single[0]
        neighbors = [link.tail for link in topo.network.in_links(node)]
        addresses = {sim.interface_address(node, nb) for nb in neighbors}
        assert addresses == {sim.canonical_address(node)}

    def test_trace_covers_path(self, setup):
        _, paths, sim = setup
        record = sim.trace(paths[0])
        assert len(record.hops) == paths[0].length
        assert [h.true_router for h in record.hops] == [
            link.head for link in paths[0].links
        ]


class TestMeasuredTopology:
    def test_full_recall_no_splits(self):
        topo = planetlab_like(num_sites=6, seed=7)
        paths = build_paths(topo.network, topo.beacons, topo.destinations)
        sim = TracerouteSimulator(
            topo.network,
            config=TracerouteConfig(no_response_rate=0.0),
            end_hosts=topo.end_hosts,
            seed=8,
        )
        records = sim.trace_all(paths)
        resolution = resolve_aliases(sim, records, recall=1.0, seed=9)
        measured = build_measured_topology(sim, paths, records, resolution)
        assert measured.num_split_routers == 0
        assert measured.num_anonymous_nodes == 0
        # Perfect measurement: same node/link counts as the covered truth.
        covered_nodes = {p.source for p in paths} | {
            link.head for p in paths for link in p.links
        }
        assert measured.network.num_nodes == len(covered_nodes)

    def test_imperfect_measurement_inflates_topology(self):
        topo = planetlab_like(num_sites=6, seed=7)
        paths = build_paths(topo.network, topo.beacons, topo.destinations)
        measured = measure_topology(
            topo.network, paths, end_hosts=topo.end_hosts, recall=0.3, seed=10
        )
        assert measured.num_split_routers + measured.num_anonymous_nodes > 0

    def test_paths_align_one_to_one(self):
        topo = planetlab_like(num_sites=6, seed=11)
        paths = build_paths(topo.network, topo.beacons, topo.destinations)
        measured = measure_topology(
            topo.network, paths, end_hosts=topo.end_hosts, seed=12
        )
        assert len(measured.paths) == len(paths)
        for true, meas in zip(paths, measured.paths):
            assert meas.length == true.length

    def test_link_mapping_covers_all_measured_links(self):
        topo = planetlab_like(num_sites=6, seed=13)
        paths = build_paths(topo.network, topo.beacons, topo.destinations)
        measured = measure_topology(
            topo.network, paths, end_hosts=topo.end_hosts, seed=14
        )
        assert set(measured.true_link_of_measured) == set(
            range(measured.network.num_links)
        )
