"""Tests for snapshots, the probing simulator and campaign plumbing."""

import numpy as np
import pytest

from repro.lossmodel import BernoulliProcess
from repro.probing import (
    MeasurementCampaign,
    ProberConfig,
    ProbingSimulator,
    Snapshot,
    log_with_floor,
)


class TestLogFloor:
    def test_floor_default_half_probe(self):
        rates = np.array([0.0, 1.0])
        logs = log_with_floor(rates, num_probes=1000)
        assert logs[0] == pytest.approx(np.log(0.0005))
        assert logs[1] == 0.0

    def test_explicit_floor(self):
        logs = log_with_floor(np.array([0.0]), 100, floor=0.01)
        assert logs[0] == pytest.approx(np.log(0.01))

    def test_invalid_floor(self):
        with pytest.raises(ValueError):
            log_with_floor(np.array([0.5]), 100, floor=2.0)


class TestSnapshot:
    def test_validation(self):
        with pytest.raises(ValueError):
            Snapshot(path_transmission=np.array([1.5]), num_probes=10)
        with pytest.raises(ValueError):
            Snapshot(path_transmission=np.array([0.5]), num_probes=0)

    def test_loss_complement(self):
        snap = Snapshot(path_transmission=np.array([0.9, 1.0]), num_probes=10)
        assert np.allclose(snap.path_loss_rates(), [0.1, 0.0])

    def test_truth_required_for_virtual_queries(self, small_tree):
        _, _, routing = small_tree
        snap = Snapshot(
            path_transmission=np.ones(routing.num_paths), num_probes=10
        )
        with pytest.raises(ValueError, match="ground truth"):
            snap.virtual_loss_rates(routing)
        with pytest.raises(ValueError, match="realized"):
            snap.realized_virtual_loss_rates(routing)


class TestProberPacketMode:
    def test_s1_holds_exactly(self, small_tree):
        """All paths through a link see the same realized loss fraction.

        With shared per-link realizations, a path's measured rate can
        deviate from the product of realized link fractions only through
        cross-link timing noise, which vanishes for single-link paths.
        """
        topo, paths, routing = small_tree
        sim = ProbingSimulator(paths, topo.network.num_links)
        snap = sim.run_snapshot(seed=5)
        for path in paths:
            if path.length == 1:
                realized = 1 - snap.realized_loss_fractions[path.links[0].index]
                assert snap.path_transmission[path.index] == pytest.approx(
                    realized
                )

    def test_path_rate_close_to_link_product(self, small_tree):
        topo, paths, routing = small_tree
        sim = ProbingSimulator(paths, topo.network.num_links)
        snap = sim.run_snapshot(seed=6)
        survival = 1 - snap.realized_loss_fractions
        for path in paths[:30]:
            product = np.prod([survival[link.index] for link in path.links])
            assert snap.path_transmission[path.index] == pytest.approx(
                product, abs=0.05
            )

    def test_realized_fractions_near_assigned(self, small_tree):
        topo, paths, routing = small_tree
        config = ProberConfig(probes_per_snapshot=5000)
        sim = ProbingSimulator(paths, topo.network.num_links, config=config)
        snap = sim.run_snapshot(seed=7)
        congested = snap.truth.congested
        assert np.allclose(
            snap.realized_loss_fractions[congested],
            snap.truth.loss_rates[congested],
            atol=0.05,
        )


class TestProberFlowMode:
    def test_flow_without_noise_is_exact_product(self, small_tree):
        topo, paths, routing = small_tree
        config = ProberConfig(fidelity="flow", path_sampling_noise=False)
        sim = ProbingSimulator(paths, topo.network.num_links, config=config)
        snap = sim.run_snapshot(seed=8)
        survival = 1 - snap.realized_loss_fractions
        for path in paths:
            product = np.prod([survival[link.index] for link in path.links])
            assert snap.path_transmission[path.index] == pytest.approx(product)

    def test_flow_with_noise_differs(self, small_tree):
        topo, paths, routing = small_tree
        config = ProberConfig(fidelity="flow", path_sampling_noise=True)
        sim = ProbingSimulator(paths, topo.network.num_links, config=config)
        snap = sim.run_snapshot(seed=9)
        survival = 1 - snap.realized_loss_fractions
        products = np.array(
            [
                np.prod([survival[link.index] for link in p.links])
                for p in paths
            ]
        )
        assert not np.allclose(snap.path_transmission, products)


class TestCampaigns:
    def test_fixed_mode_shares_truth(self, small_tree):
        topo, paths, routing = small_tree
        sim = ProbingSimulator(paths, topo.network.num_links)
        campaign = sim.run_campaign(5, routing, seed=1, truth_mode="fixed")
        first = campaign[0].truth
        assert all(s.truth is first for s in campaign.snapshots)

    def test_redraw_mode_changes_truth(self, small_tree):
        topo, paths, routing = small_tree
        sim = ProbingSimulator(paths, topo.network.num_links)
        campaign = sim.run_campaign(5, routing, seed=1, truth_mode="redraw")
        marks = {s.truth.congested.tobytes() for s in campaign.snapshots}
        assert len(marks) > 1

    def test_propensity_mode_concentrates_congestion(self, small_tree):
        topo, paths, routing = small_tree
        config = ProberConfig(
            truth_mode="propensity",
            congestion_probability=0.05,
            propensity_range=(0.5, 0.9),
        )
        sim = ProbingSimulator(paths, topo.network.num_links, config=config)
        campaign = sim.run_campaign(20, routing, seed=2)
        counts = sum(s.truth.congested.astype(int) for s in campaign.snapshots)
        # Trouble links recur; others never congest.
        assert (counts >= 5).any()
        assert (counts == 0).mean() > 0.8

    def test_explicit_propensities(self, small_tree):
        topo, paths, routing = small_tree
        config = ProberConfig(truth_mode="propensity")
        sim = ProbingSimulator(paths, topo.network.num_links, config=config)
        propensities = np.zeros(topo.network.num_links)
        propensities[0] = 1.0
        campaign = sim.run_campaign(
            4, routing, seed=3, propensities=propensities
        )
        for snap in campaign.snapshots:
            assert snap.truth.congested[0]
            assert snap.truth.congested.sum() == 1

    def test_explicit_propensities_need_propensity_mode(self, small_tree):
        topo, paths, routing = small_tree
        sim = ProbingSimulator(paths, topo.network.num_links)
        with pytest.raises(ValueError, match="propensity"):
            sim.run_campaign(
                2, routing, seed=3,
                propensities=np.zeros(topo.network.num_links),
            )

    def test_split_training_target(self, tree_campaign):
        training, target = tree_campaign.split_training_target()
        assert len(training) == len(tree_campaign) - 1
        assert target is tree_campaign[-1]

    def test_log_matrix_shape(self, tree_campaign):
        Y = tree_campaign.log_matrix()
        assert Y.shape == (len(tree_campaign), tree_campaign.routing.num_paths)
        assert (Y <= 0).all()

    def test_campaign_rejects_misshaped_snapshot(self, small_tree):
        _, _, routing = small_tree
        campaign = MeasurementCampaign(routing=routing)
        with pytest.raises(ValueError):
            campaign.append(
                Snapshot(path_transmission=np.ones(3), num_probes=10)
            )

    def test_custom_process(self, small_tree):
        topo, paths, routing = small_tree
        sim = ProbingSimulator(
            paths, topo.network.num_links, process=BernoulliProcess()
        )
        snap = sim.run_snapshot(seed=11)
        assert snap.num_paths == routing.num_paths
