"""Kernel-tier registry and backend correctness tests.

Two layers:

* tier selection — the ``REPRO_KERNEL_TIER`` environment variable, the
  explicit :func:`set_kernel_tier` call, the ``use_kernel_tier`` context
  manager, and the numba-missing fallback/raise rules;
* kernel arithmetic — the numpy tier pinned to the ``*_reference``
  oracles (it *is* the extracted historical code), and, when numba is
  installed (CI's ``[fast]`` legs), the compiled tier pinned to the
  numpy tier: bit-for-bit for the fused CG matvec, machine precision
  for the BLAS-replacing loops, and seed-identical end-to-end payloads.
"""

import numpy as np
import pytest
from scipy import linalg as scipy_linalg
from scipy import sparse

from repro.core import kernels
from repro.core.kernels import (
    ENV_VAR,
    KERNEL_OPS,
    KernelTierError,
    available_tiers,
    current_tier,
    get_kernels,
    numba_available,
    set_kernel_tier,
    use_kernel_tier,
)
from repro.core.kernels import numpy_backend
from repro.core.linalg import (
    IncrementalColumnBasis,
    QRFactorization,
    back_substitution,
    householder_qr,
    householder_qr_reference,
    solve_least_squares_qr,
    solve_upper_triangular,
)
from repro.core.sparse_solvers import solve_normal_cg, solve_normal_sparse

needs_numba = pytest.mark.skipif(
    not numba_available(), reason="numba not installed (pip install repro[fast])"
)
without_numba = pytest.mark.skipif(
    numba_available(), reason="test covers the numba-missing machine"
)


@pytest.fixture(autouse=True)
def clean_tier_state(monkeypatch):
    """Each test starts from auto selection and an unset environment."""
    monkeypatch.delenv(ENV_VAR, raising=False)
    set_kernel_tier(None)
    yield
    # Drop any test-set env value before resetting: set_kernel_tier(None)
    # re-resolves the environment and must not see a bogus entry.
    monkeypatch.delenv(ENV_VAR, raising=False)
    set_kernel_tier(None)


class TestTierSelection:
    def test_numpy_always_available(self):
        assert "numpy" in available_tiers()

    def test_available_matches_numba_presence(self):
        if numba_available():
            assert available_tiers() == ("numba", "numpy")
        else:
            assert available_tiers() == ("numpy",)

    def test_auto_resolves_to_best_available(self):
        assert current_tier() == available_tiers()[0]
        assert get_kernels().TIER == current_tier()

    def test_env_var_selects_numpy(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "numpy")
        assert current_tier() == "numpy"
        assert get_kernels().TIER == "numpy"

    def test_env_var_bogus_raises(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "fortran")
        with pytest.raises(KernelTierError, match="fortran"):
            current_tier()

    @without_numba
    def test_env_var_numba_missing_warns_and_falls_back(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "numba")
        with pytest.warns(RuntimeWarning, match="falling back"):
            tier = current_tier()
        assert tier == "numpy"

    @needs_numba
    def test_env_var_selects_numba(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "numba")
        assert current_tier() == "numba"
        assert get_kernels().TIER == "numba"

    @without_numba
    def test_explicit_numba_missing_raises(self):
        with pytest.raises(KernelTierError, match="repro\\[fast\\]"):
            set_kernel_tier("numba")

    def test_explicit_bogus_raises(self):
        with pytest.raises(KernelTierError, match="unknown kernel tier"):
            set_kernel_tier("cython")

    def test_explicit_selection_beats_environment(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "fortran")  # would raise if consulted
        assert set_kernel_tier("numpy") == "numpy"
        assert current_tier() == "numpy"

    def test_set_none_reenables_auto(self):
        set_kernel_tier("numpy")
        set_kernel_tier(None)
        assert current_tier() == available_tiers()[0]

    def test_use_kernel_tier_restores_selection(self):
        before = current_tier()
        with use_kernel_tier("numpy") as tier:
            assert tier == "numpy"
            assert current_tier() == "numpy"
            assert get_kernels().TIER == "numpy"
        assert current_tier() == before

    def test_backends_export_every_op(self):
        backend = get_kernels()
        for op in KERNEL_OPS:
            assert hasattr(backend, op), op

    def test_numpy_tier_has_no_fused_gram_matvec(self):
        with use_kernel_tier("numpy"):
            assert get_kernels().gram_matvec is None


def _back_substitution_oracle(U, b, tol):
    """The seed elimination loop, written out independently."""
    n = U.shape[0]
    x = np.zeros(n)
    for k in range(n - 1, -1, -1):
        residual = float(b[k])
        for j in range(k + 1, n):
            residual -= U[k, j] * x[j]
        x[k] = 0.0 if abs(U[k, k]) <= tol else residual / U[k, k]
    return x


def _insert_column_state(seed, m=18, k=6, position=2):
    """Pre-rotation ``(A, r, q, position)`` as ``add_column`` assembles it."""
    rng = np.random.default_rng(seed)
    A = rng.normal(size=(m, k + 1))
    base = np.delete(A, position, axis=1)
    q0, r0 = np.linalg.qr(base)
    a = A[:, position]
    v = a - q0 @ (q0.T @ a)
    v -= q0 @ (q0.T @ v)
    rho = np.linalg.norm(v)
    q = np.empty((m, k + 1))
    q[:, :k] = q0
    q[:, k] = v / rho
    r = np.zeros((k + 1, k + 1))
    r[:k, :position] = r0[:, :position]
    r[:k, position + 1 :] = r0[:, position:]
    r[:k, position] = q0.T @ (a - v)
    r[k, position] = rho
    return A, r, q, position


def _append_rows_state(seed, m=14, k=5, t=3):
    """Pre-sweep ``(A, r, rows, q)`` as ``append_rows`` assembles them."""
    rng = np.random.default_rng(seed)
    A = rng.normal(size=(m + t, k))
    q0, r0 = np.linalg.qr(A[:m])
    q = np.zeros((m + t, k + t))
    q[:m, :k] = q0
    for j in range(t):
        q[m + j, k + j] = 1.0
    return A, np.ascontiguousarray(r0), A[m:].copy(), q


class TestNumpyKernels:
    """The numpy backend pinned to the seed oracles, edge cases included."""

    @pytest.mark.parametrize("n", [0, 1, 2, 7, 25])
    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_back_substitution_matches_oracle(self, n, dtype):
        rng = np.random.default_rng(n)
        U = np.triu(rng.normal(size=(n, n))).astype(dtype)
        if n > 2:
            U[n // 2, n // 2] = 0.0  # force the degenerate pivot branch
        b = rng.normal(size=n).astype(dtype)
        tol = 1e-12
        got = numpy_backend.back_substitution(
            np.ascontiguousarray(U, dtype=np.float64),
            np.ascontiguousarray(b, dtype=np.float64),
            tol,
        )
        expected = _back_substitution_oracle(
            U.astype(np.float64), b.astype(np.float64), tol
        )
        assert np.allclose(got, expected, rtol=1e-12, atol=1e-12)
        if n > 2:
            assert got[n // 2] == 0.0

    def test_module_back_substitution_degenerate_path(self):
        U = np.triu(np.random.default_rng(3).normal(size=(6, 6)))
        U[2, 2] = 0.0
        b = np.arange(6, dtype=np.float64)
        x = back_substitution(U, b)
        assert x[2] == 0.0
        keep = [0, 1, 3, 4, 5]
        assert np.allclose((U @ x)[np.ix_(keep)], b[keep], atol=1e-9)

    @pytest.mark.parametrize(
        "shape", [(4, 0), (5, 1), (8, 8), (40, 17), (60, 33)]
    )
    def test_householder_qr_matches_reference(self, shape):
        rng = np.random.default_rng(shape[1])
        A = rng.normal(size=shape)
        if shape[1] >= 2:
            A[:, 1] = A[:, 0]  # rank-deficient: duplicate column
        Q, R = householder_qr(A, block_size=8)
        Q_ref, R_ref = householder_qr_reference(A)
        assert np.allclose(Q @ R, A, atol=1e-10)
        assert np.allclose(Q, Q_ref, atol=1e-10)
        assert np.allclose(R, R_ref, atol=1e-10)

    @pytest.mark.parametrize("seed", [0, 5])
    def test_cgs2_matches_reference_decisions(self, seed):
        rng = np.random.default_rng(seed)
        fast = IncrementalColumnBasis(dimension=12)
        slow = IncrementalColumnBasis(dimension=12)
        for _ in range(20):
            column = rng.normal(size=12)
            if rng.random() < 0.3 and fast.rank:
                column = fast.basis_matrix @ rng.normal(size=fast.rank)
            assert fast.try_add(column.copy()) == slow.try_add_reference(
                column.copy()
            )
        assert fast.rank == slow.rank
        assert np.allclose(fast.basis_matrix, slow.basis_matrix, atol=1e-10)

    def test_givens_downdate_restores_factorization(self):
        rng = np.random.default_rng(11)
        A = rng.normal(size=(15, 6))
        factorization = QRFactorization.factorize(A)
        for position in (0, 3, 5):
            down = factorization.remove_column(position)
            reduced = np.delete(A, position, axis=1)
            assert np.allclose(down.q @ down.r, reduced, atol=1e-10)
            assert np.allclose(down.q.T @ down.q, np.eye(5), atol=1e-10)
            # The parent factorization is untouched (fresh-copy contract).
            assert np.allclose(
                factorization.q @ factorization.r, A, atol=1e-10
            )

    def test_solve_upper_triangular_both_contiguities(self):
        rng = np.random.default_rng(4)
        r = np.triu(rng.normal(size=(9, 9)) + 3 * np.eye(9))
        b = rng.normal(size=9)
        expected = scipy_linalg.solve_triangular(r, b, lower=False)
        assert np.allclose(solve_upper_triangular(r, b), expected, atol=1e-12)
        fortran_r = np.asfortranarray(r)
        assert np.allclose(
            solve_upper_triangular(fortran_r, b), expected, atol=1e-12
        )

    def test_solve_upper_triangular_singular_raises(self):
        r = np.triu(np.ones((3, 3)))
        r[1, 1] = 0.0
        with pytest.raises(scipy_linalg.LinAlgError):
            solve_upper_triangular(r, np.ones(3))

    def test_cg_without_fused_kernel_matches_sparse(self):
        rng = np.random.default_rng(7)
        A = sparse.random(60, 25, density=0.2, random_state=8, format="csr")
        b = rng.normal(size=60)
        with use_kernel_tier("numpy"):
            cg = solve_normal_cg(A, b)
        direct = solve_normal_sparse(A, b)
        assert np.allclose(cg, direct, rtol=1e-8, atol=1e-10)

    def test_givens_insert_column_restores_factorization(self):
        A, r, q, position = _insert_column_state(seed=31)
        numpy_backend.givens_insert_column(r, q, position)
        k = r.shape[0]
        assert np.allclose(r, np.triu(r), atol=1e-12)
        assert np.allclose(q.T @ q, np.eye(k), atol=1e-10)
        assert np.allclose(q @ r, A, atol=1e-10)

    def test_givens_append_rows_restores_factorization(self):
        A, r, rows, q = _append_rows_state(seed=32)
        numpy_backend.givens_append_rows(r, rows, q)
        k = r.shape[1]
        assert np.allclose(r, np.triu(r), atol=1e-12)
        # Eliminated rows are fully absorbed into R.
        assert np.allclose(rows, 0.0, atol=1e-10)
        assert np.allclose(q[:, :k].T @ q[:, :k], np.eye(k), atol=1e-10)
        assert np.allclose(q[:, :k] @ r, A, atol=1e-10)


@needs_numba
class TestNumbaKernels:
    """The compiled tier pinned to the numpy tier (CI ``[fast]`` legs)."""

    @pytest.fixture()
    def numba_backend(self):
        from repro.core.kernels import numba_backend

        return numba_backend

    def test_tier_reports_numba(self, numba_backend):
        assert numba_backend.TIER == "numba"
        with use_kernel_tier("numba"):
            assert get_kernels() is numba_backend

    @pytest.mark.parametrize("n", [0, 1, 2, 7, 40])
    def test_back_substitution_matches_numpy_tier(self, numba_backend, n):
        rng = np.random.default_rng(n)
        U = np.ascontiguousarray(np.triu(rng.normal(size=(n, n))))
        if n > 2:
            U[n // 2, n // 2] = 0.0
        b = rng.normal(size=n)
        tol = 1e-12
        got = numba_backend.back_substitution(U, b, tol)
        expected = numpy_backend.back_substitution(U.copy(), b.copy(), tol)
        assert np.allclose(got, expected, rtol=1e-13, atol=1e-13)
        assert np.array_equal(got == 0.0, expected == 0.0)

    def test_cgs2_matches_numpy_tier(self, numba_backend):
        rng = np.random.default_rng(2)
        B, _ = np.linalg.qr(rng.normal(size=(30, 6)))
        storage = np.ascontiguousarray(B)
        v = rng.normal(size=30)
        got = numba_backend.cgs2_project(storage, 6, v.copy())
        expected = numpy_backend.cgs2_project(storage, 6, v.copy())
        assert np.allclose(got, expected, rtol=1e-12, atol=1e-13)

    def test_givens_downdate_matches_numpy_tier(self, numba_backend):
        rng = np.random.default_rng(9)
        A = rng.normal(size=(20, 7))
        q, r = np.linalg.qr(A)
        r_deleted = np.ascontiguousarray(np.delete(r, 2, axis=1))
        q0, r0 = q.copy(), r_deleted.copy()
        q1, r1 = q.copy(), r_deleted.copy()
        numba_backend.givens_downdate(r0, q0, 2)
        numpy_backend.givens_downdate(r1, q1, 2)
        assert np.allclose(r0, r1, rtol=1e-12, atol=1e-13)
        assert np.allclose(q0, q1, rtol=1e-12, atol=1e-13)

    def test_givens_insert_column_matches_numpy_tier(self, numba_backend):
        _, r, q, position = _insert_column_state(seed=17)
        r0, q0 = r.copy(), q.copy()
        r1, q1 = r.copy(), q.copy()
        numba_backend.givens_insert_column(r0, q0, position)
        numpy_backend.givens_insert_column(r1, q1, position)
        assert np.allclose(r0, r1, rtol=1e-12, atol=1e-13)
        assert np.allclose(q0, q1, rtol=1e-12, atol=1e-13)

    def test_givens_append_rows_matches_numpy_tier(self, numba_backend):
        _, r, rows, q = _append_rows_state(seed=18)
        r0, rows0, q0 = r.copy(), rows.copy(), q.copy()
        r1, rows1, q1 = r.copy(), rows.copy(), q.copy()
        numba_backend.givens_append_rows(r0, rows0, q0)
        numpy_backend.givens_append_rows(r1, rows1, q1)
        assert np.allclose(r0, r1, rtol=1e-12, atol=1e-13)
        assert np.allclose(q0, q1, rtol=1e-12, atol=1e-13)
        assert np.allclose(rows0, rows1, atol=1e-12)

    @pytest.mark.parametrize("shape", [(5, 1), (12, 8), (50, 20)])
    def test_householder_panel_matches_numpy_tier(self, numba_backend, shape):
        rng = np.random.default_rng(shape[1])
        base = rng.normal(size=shape)
        m, n = shape
        results = []
        for backend in (numba_backend, numpy_backend):
            A = base.copy()
            V = np.zeros((m, n))
            betas = np.zeros(n)
            T = backend.householder_panel(A, V, betas, 0, n)
            results.append((A, V, betas, T))
        for got, expected in zip(results[0], results[1]):
            assert np.allclose(got, expected, rtol=1e-10, atol=1e-11)

    def test_gram_matvec_bit_identical_to_scipy(self, numba_backend):
        # The load-bearing identity: the fused kernel must reproduce
        # scipy's sequential CSR accumulation exactly, or "cg" payloads
        # would drift across tiers.
        rng = np.random.default_rng(21)
        A = sparse.random(80, 35, density=0.15, random_state=5, format="csr")
        At = A.T.tocsr()
        x = rng.normal(size=35)
        ridge = 1e-8
        got = numba_backend.gram_matvec(
            A.data, A.indices, A.indptr,
            At.data, At.indices, At.indptr,
            A.shape[0], np.ascontiguousarray(x), ridge,
        )
        expected = At @ (A @ x) + ridge * x
        assert np.array_equal(got, expected)

    def test_cg_solver_identical_across_tiers(self):
        rng = np.random.default_rng(13)
        A = sparse.random(70, 30, density=0.2, random_state=3, format="csr")
        b = rng.normal(size=70)
        with use_kernel_tier("numpy"):
            reference = solve_normal_cg(A, b)
        with use_kernel_tier("numba"):
            compiled = solve_normal_cg(A, b)
        assert np.array_equal(reference, compiled)

    def test_qr_ablation_solver_identical_across_tiers(self):
        # solve_least_squares_qr pins the numpy backend by parameter, so
        # the "qr" phase-1 ablation payload cannot follow the tier.
        rng = np.random.default_rng(17)
        A = rng.normal(size=(40, 12))
        b = rng.normal(size=40)
        with use_kernel_tier("numpy"):
            reference = solve_least_squares_qr(A, b)
        with use_kernel_tier("numba"):
            compiled = solve_least_squares_qr(A, b)
        assert np.array_equal(reference, compiled)

    def test_lia_payload_identical_across_tiers(self, small_tree, tree_campaign):
        from repro.core.lia import LossInferenceAlgorithm

        _, _, routing = small_tree
        outputs = []
        for tier in ("numpy", "numba"):
            with use_kernel_tier(tier):
                lia = LossInferenceAlgorithm(routing)
                outputs.append(lia.run(tree_campaign).loss_rates)
        assert np.array_equal(outputs[0], outputs[1])
