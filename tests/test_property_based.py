"""Property-based tests (hypothesis) for the core invariants.

The headline property is Theorem 1 itself: for every topology our
generators produce (trees and meshes, any size/seed), the augmented
matrix has full column rank — the variances are identifiable — even
though the routing matrix itself is rank deficient.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.augmented import (
    augmented_rank,
    num_pair_rows,
    pair_from_row_index,
    pair_row_index,
)
from repro.core.linalg import greedy_independent_columns, solve_least_squares_qr
from repro.core.reduction import reduce_to_full_rank
from repro.lossmodel import GilbertProcess
from repro.topology.fluttering import find_fluttering_pairs
from repro.topology.generators import planetlab_like, random_tree, waxman
from repro.topology.graph import build_paths
from repro.topology.routing import RoutingMatrix

FAST = settings(max_examples=15, deadline=None)
SLOW = settings(max_examples=8, deadline=None)


class TestTheorem1:
    @SLOW
    @given(
        num_nodes=st.integers(min_value=8, max_value=120),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_trees_identifiable(self, num_nodes, seed):
        """Lemma 3: single-beacon trees always have full-rank A."""
        topo = random_tree(num_nodes=num_nodes, seed=seed)
        paths = build_paths(topo.network, topo.beacons, topo.destinations)
        routing = RoutingMatrix.from_paths(paths)
        assert augmented_rank(routing.matrix) == routing.num_links

    @SLOW
    @given(
        num_sites=st.integers(min_value=3, max_value=10),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_planetlab_meshes_identifiable(self, num_sites, seed):
        """Theorem 1: multi-beacon meshes (T.2 holding) have full-rank A."""
        topo = planetlab_like(num_sites=num_sites, seed=seed)
        paths = build_paths(topo.network, topo.beacons, topo.destinations)
        if find_fluttering_pairs(paths):
            return  # premises fail; theorem says nothing
        routing = RoutingMatrix.from_paths(paths)
        assert augmented_rank(routing.matrix) == routing.num_links

    @SLOW
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_waxman_meshes_identifiable(self, seed):
        topo = waxman(num_nodes=60, num_end_hosts=8, seed=seed)
        paths = build_paths(topo.network, topo.beacons, topo.destinations)
        if find_fluttering_pairs(paths):
            return
        routing = RoutingMatrix.from_paths(paths)
        assert augmented_rank(routing.matrix) == routing.num_links


class TestPairIndexBijection:
    @FAST
    @given(n=st.integers(min_value=1, max_value=60))
    def test_bijection(self, n):
        rows = [
            pair_row_index(i, j, n) for i in range(n) for j in range(i, n)
        ]
        assert sorted(rows) == list(range(num_pair_rows(n)))
        for i in range(n):
            for j in range(i, n):
                assert pair_from_row_index(pair_row_index(i, j, n), n) == (i, j)


class TestRoutingInvariants:
    @FAST
    @given(
        num_nodes=st.integers(min_value=8, max_value=100),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_alias_reduction_is_sound(self, num_nodes, seed):
        """Columns are distinct, non-zero, and partition the covered links."""
        topo = random_tree(num_nodes=num_nodes, seed=seed)
        paths = build_paths(topo.network, topo.beacons, topo.destinations)
        routing = RoutingMatrix.from_paths(paths)
        R = routing.matrix
        assert R.sum(axis=0).min() >= 1
        assert len({R[:, c].tobytes() for c in range(R.shape[1])}) == R.shape[1]
        members = [
            m for v in routing.virtual_links for m in v.member_indices()
        ]
        assert len(members) == len(set(members))

    @FAST
    @given(
        num_nodes=st.integers(min_value=8, max_value=100),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_paths_from_one_beacon_form_tree(self, num_nodes, seed):
        topo = random_tree(num_nodes=num_nodes, seed=seed)
        paths = build_paths(topo.network, topo.beacons, topo.destinations)
        assert find_fluttering_pairs(paths) == []


class TestLinalgProperties:
    @FAST
    @given(
        m=st.integers(min_value=3, max_value=20),
        n=st.integers(min_value=1, max_value=10),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_qr_least_squares_matches_numpy(self, m, n, seed):
        if m < n:
            m, n = n, m
        rng = np.random.default_rng(seed)
        A = rng.normal(size=(m, n))
        b = rng.normal(size=m)
        ours = solve_least_squares_qr(A, b)
        theirs, *_ = np.linalg.lstsq(A, b, rcond=None)
        assert np.allclose(ours, theirs, atol=1e-6)

    @FAST
    @given(
        n=st.integers(min_value=2, max_value=12),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_greedy_columns_span(self, n, seed):
        rng = np.random.default_rng(seed)
        A = rng.normal(size=(n + 3, n))
        extra = A @ rng.normal(size=(n, 2))
        B = np.hstack([A, extra])
        kept = greedy_independent_columns(B, list(range(B.shape[1])))
        assert np.linalg.matrix_rank(B[:, kept]) == np.linalg.matrix_rank(B)
        assert len(kept) == np.linalg.matrix_rank(B)


class TestReductionProperties:
    @FAST
    @given(
        num_nodes=st.integers(min_value=10, max_value=80),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_kept_columns_always_independent(self, num_nodes, seed):
        topo = random_tree(num_nodes=num_nodes, seed=seed)
        paths = build_paths(topo.network, topo.beacons, topo.destinations)
        routing = RoutingMatrix.from_paths(paths)
        rng = np.random.default_rng(seed)
        v = rng.random(routing.num_links)
        for strategy, kwargs in (
            ("paper", {}),
            ("greedy", {}),
            ("gap", {}),
            ("threshold", {"variance_cutoff": 0.5}),
        ):
            result = reduce_to_full_rank(
                routing.matrix, v, strategy=strategy, **kwargs
            )
            if result.num_kept:
                sub = routing.to_dense()[:, result.kept_columns]
                assert np.linalg.matrix_rank(sub) == result.num_kept


class TestGilbertProperties:
    @FAST
    @given(
        rate=st.floats(min_value=0.01, max_value=0.9),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_stationary_rate(self, rate, seed):
        states = GilbertProcess().sample_states(
            np.array([rate]), 30_000, seed=seed
        )
        assert states.mean() == pytest.approx(rate, abs=0.05)

    @FAST
    @given(
        rate=st.floats(min_value=0.05, max_value=0.6),
        stay_bad=st.floats(min_value=0.05, max_value=0.8),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_long_run_fraction_converges_for_any_chain(self, rate, stay_bad, seed):
        """The stationary loss fraction hits the target for every chain."""
        process = GilbertProcess(stay_bad=stay_bad)
        states = process.sample_states(np.array([rate]), 50_000, seed=seed)
        assert states.mean() == pytest.approx(rate, abs=0.05)

    @FAST
    @given(
        rate=st.floats(min_value=0.1, max_value=0.5),
        stay_bad=st.floats(min_value=0.1, max_value=0.7),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_mean_burst_length_matches_chain_expectation(
        self, rate, stay_bad, seed
    ):
        """Empirical bad-run length ~ 1/(1 - stay_bad), the chain mean."""
        process = GilbertProcess(stay_bad=stay_bad)
        states = process.sample_states(np.array([rate]), 120_000, seed=seed)[0]
        padded = np.concatenate(([False], states, [False])).astype(np.int8)
        edges = np.diff(padded)
        run_lengths = np.flatnonzero(edges == -1) - np.flatnonzero(edges == 1)
        assert run_lengths.size > 50  # enough bursts to average
        assert np.mean(run_lengths) == pytest.approx(
            process.burst_length_mean(), rel=0.15
        )
