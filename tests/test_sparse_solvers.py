"""Tests for the sparse phase-1 solver subsystem and its bugfix sweep.

Covers the PR-5 surface: cross-solver agreement (every dense and sparse
solver pinned to the same ``v`` on well-conditioned systems), the
automatic dense→sparse crossover, the unweighted/weighted residual-norm
split, and the shared empty-system guard both the loss and delay layers
now raise from :func:`repro.core.variance.solve_covariance_system`.
"""

import numpy as np
import pytest
from scipy import sparse

from repro.core import sparse_solvers
from repro.core.augmented import intersecting_pairs
from repro.core.sparse_solvers import solve_normal_cg, solve_normal_sparse
from repro.core.variance import (
    VARIANCE_METHODS,
    estimate_link_variances,
    solve_covariance_system,
)
from repro.delay import DelayCampaign, DelayInferenceAlgorithm, DelaySnapshot
from tests.test_covariance_variance import synthetic_campaign


def synthetic_sparse_system(num_paths, num_links, links_per_path, seed):
    """A phase-1-shaped system: sparse binary A from random 'paths'.

    Each path marks ``links_per_path`` random links and every link is
    touched at least once, so ``A`` (the intersecting-pairs matrix of
    the implied routing matrix) has full column rank with high
    probability; ``b = A v_true + noise``.
    """
    rng = np.random.default_rng(seed)
    R = np.zeros((num_paths, num_links), dtype=np.uint8)
    for i in range(num_paths):
        R[i, rng.choice(num_links, size=links_per_path, replace=False)] = 1
    # Guarantee coverage: give orphan links to round-robin paths.
    for k in np.flatnonzero(R.sum(axis=0) == 0):
        R[int(k) % num_paths, k] = 1
    pairs = intersecting_pairs(R)
    v_true = rng.uniform(0.01, 1.0, size=num_links)
    b = pairs.matrix @ v_true + rng.normal(0.0, 1e-6, size=pairs.num_pairs)
    return pairs.matrix, b, v_true


class TestSparseSolvers:
    def test_sparse_matches_dense_normal(self):
        A, b, _ = synthetic_sparse_system(300, 150, 6, seed=0)
        dense = solve_covariance_system(A, b, method="normal").variances
        via_sparse = solve_normal_sparse(A, b)
        assert np.linalg.norm(via_sparse - dense) <= 1e-8 * np.linalg.norm(dense)

    def test_cg_matches_dense_normal(self):
        A, b, _ = synthetic_sparse_system(300, 150, 6, seed=1)
        dense = solve_covariance_system(A, b, method="normal").variances
        via_cg = solve_normal_cg(A, b)
        assert np.linalg.norm(via_cg - dense) <= 1e-8 * np.linalg.norm(dense)

    def test_solvers_recover_truth(self):
        A, b, v_true = synthetic_sparse_system(400, 200, 6, seed=2)
        for method in ("sparse", "cg"):
            v = solve_covariance_system(A, b, method=method).variances
            assert np.linalg.norm(v - v_true) <= 1e-3 * np.linalg.norm(v_true)

    def test_accepts_dense_input(self):
        A, b, _ = synthetic_sparse_system(120, 40, 5, seed=3)
        assert np.allclose(
            solve_normal_sparse(A.toarray(), b), solve_normal_sparse(A, b)
        )

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            solve_normal_sparse(np.ones(4), np.ones(4))

    def test_auto_crossover_routes_wls_to_sparse(self, figure2, monkeypatch):
        """Above the threshold, 'wls' solves the same weighted system sparsely."""
        _, _, routing = figure2
        campaign = synthetic_campaign(
            routing, np.full(routing.num_links, 0.1), m=200, seed=12
        )
        dense_wls = estimate_link_variances(campaign, method="wls")
        monkeypatch.setattr(sparse_solvers, "SPARSE_AUTO_THRESHOLD", 1)
        sparse_wls = estimate_link_variances(campaign, method="wls")
        assert np.linalg.norm(
            sparse_wls.variances - dense_wls.variances
        ) <= 1e-8 * np.linalg.norm(dense_wls.variances)
        # The identically regularized system also yields identical
        # residual diagnostics to float precision.
        assert sparse_wls.residual_norm == pytest.approx(dense_wls.residual_norm)

    def test_auto_crossover_below_threshold_is_dense_path(self, figure2):
        """Every experiment-scale system stays on the historical solver."""
        _, _, routing = figure2
        assert not sparse_solvers.use_sparse_normal(routing.num_links)
        assert sparse_solvers.use_sparse_normal(
            sparse_solvers.SPARSE_AUTO_THRESHOLD + 1
        )


class TestCrossSolverAgreement:
    def test_unweighted_solvers_agree(self, figure2):
        """lsmr / normal / qr / sparse / cg pin the same least-squares v."""
        _, _, routing = figure2
        campaign = synthetic_campaign(
            routing, np.full(routing.num_links, 0.1), m=300, seed=4
        )
        estimates = {
            m: estimate_link_variances(campaign, method=m).variances
            for m in ("lsmr", "normal", "qr", "sparse", "cg")
        }
        for method, values in estimates.items():
            assert np.allclose(values, estimates["normal"], atol=1e-8), method

    def test_every_method_recovers_known_variances(self, figure2):
        """All VARIANCE_METHODS (incl. sparse/cg) agree with ground truth."""
        _, _, routing = figure2
        link_std = np.linspace(0.05, 0.2, routing.num_links)
        campaign = synthetic_campaign(routing, link_std, m=3000, seed=5)
        true_var = link_std**2 * (1 - 2 / np.pi)
        for method in VARIANCE_METHODS:
            estimate = estimate_link_variances(campaign, method=method)
            error = np.linalg.norm(estimate.variances - true_var)
            assert error <= 0.15 * np.linalg.norm(true_var), method


class TestResidualNorm:
    def test_wls_residual_is_unweighted(self, figure2):
        """Regression: wls used to report the *weighted* residual."""
        _, _, routing = figure2
        campaign = synthetic_campaign(
            routing, np.full(routing.num_links, 0.1), m=100, seed=6
        )
        pairs = intersecting_pairs(routing.matrix)
        estimate = estimate_link_variances(campaign, method="wls", pairs=pairs)
        # Recompute the unweighted residual over the surviving equations.
        from repro.core.covariance import (
            negative_pair_mask,
            sample_covariance_pairs,
        )

        sigma = sample_covariance_pairs(
            campaign.log_matrix(None), pairs.pair_i, pairs.pair_j
        )
        keep = ~negative_pair_mask(sigma)
        expected = np.linalg.norm(
            pairs.matrix[keep] @ estimate.variances - sigma[keep]
        )
        assert estimate.residual_norm == pytest.approx(expected)
        assert estimate.weighted_residual_norm is not None
        assert estimate.weighted_residual_norm != pytest.approx(
            estimate.residual_norm
        )

    def test_residuals_comparable_across_solvers(self, figure2):
        """On one system, every solver's residual_norm is now commensurate."""
        _, _, routing = figure2
        campaign = synthetic_campaign(
            routing, np.full(routing.num_links, 0.1), m=150, seed=7
        )
        residuals = {
            m: estimate_link_variances(campaign, method=m).residual_norm
            for m in ("wls", "normal", "sparse", "cg")
        }
        # The unweighted solvers minimise this residual; wls trades a
        # little of it for statistical efficiency, so it sits within a
        # small factor rather than orders of magnitude away.
        assert residuals["wls"] <= 3.0 * residuals["normal"]
        assert residuals["sparse"] == pytest.approx(residuals["normal"], rel=1e-6)

    def test_unweighted_methods_have_no_weighted_residual(self, figure2):
        _, _, routing = figure2
        campaign = synthetic_campaign(
            routing, np.full(routing.num_links, 0.1), m=50, seed=8
        )
        estimate = estimate_link_variances(campaign, method="normal")
        assert estimate.weighted_residual_norm is None


class _StubRouting:
    """The minimal routing surface DelayInferenceAlgorithm touches."""

    def __init__(self, matrix):
        self.matrix = np.asarray(matrix, dtype=np.uint8)

    @property
    def num_links(self):
        return int(self.matrix.shape[1])

    @property
    def num_paths(self):
        return int(self.matrix.shape[0])

    def to_sparse(self):
        return sparse.csr_matrix(self.matrix.astype(np.float64))


class TestEmptySystemGuard:
    def test_core_raises_on_underdetermined_filtered_system(self):
        A = sparse.csr_matrix(np.eye(3))
        sigma = np.array([-1.0, -2.0, -0.5])  # every equation dropped
        with pytest.raises(ValueError, match="equations remain"):
            solve_covariance_system(A, sigma, method="normal")

    def test_delay_layer_raises_same_error(self):
        """Regression: this used to crash in a degenerate dense solve.

        Two paths share one link and carry one private link each; their
        cross covariance is negative by construction, so after the
        paper's filter only the two self-pair equations survive for
        three unknowns.
        """
        routing = _StubRouting([[1, 1, 0], [1, 0, 1]])
        delays = np.array(
            [[1.0, 2.0], [2.0, 1.0], [1.0, 2.0], [2.0, 1.0], [1.5, 1.5]]
        )
        campaign = DelayCampaign(
            routing=routing,
            snapshots=[
                DelaySnapshot(path_delays=row, num_probes=100) for row in delays
            ],
        )
        algorithm = DelayInferenceAlgorithm(routing)
        with pytest.raises(ValueError, match="equations remain"):
            algorithm.learn_variances(campaign)

    def test_delay_layer_weight_floor_matches_core(self, small_tree):
        """The drifted copy-paste floor is gone: quiet systems still solve."""
        _, _, routing = small_tree
        rng = np.random.default_rng(9)
        m, n_paths = 12, routing.matrix.shape[0]
        delays = np.abs(rng.normal(5.0, 1.0, size=(m, n_paths)))
        campaign = DelayCampaign(
            routing=routing,
            snapshots=[
                DelaySnapshot(path_delays=row, num_probes=100) for row in delays
            ],
        )
        estimate = DelayInferenceAlgorithm(routing).learn_variances(campaign)
        assert estimate.num_links == routing.num_links
        assert np.isfinite(estimate.variances).all()

    def test_delay_variance_method_validated(self, small_tree):
        _, _, routing = small_tree
        with pytest.raises(ValueError, match="unknown variance method"):
            DelayInferenceAlgorithm(routing, variance_method="bogus")

    def test_delay_sparse_solver_end_to_end(self, small_tree):
        """The delay layer reaches the sparse solvers through the seam."""
        _, _, routing = small_tree
        rng = np.random.default_rng(10)
        m, n_paths = 25, routing.matrix.shape[0]
        base = rng.uniform(1.0, 3.0, size=n_paths)
        delays = base + np.abs(rng.normal(0.0, 2.0, size=(m, n_paths)))
        campaign = DelayCampaign(
            routing=routing,
            snapshots=[
                DelaySnapshot(path_delays=row, num_probes=100) for row in delays
            ],
        )
        wls = DelayInferenceAlgorithm(routing).learn_variances(campaign)
        for method in ("sparse", "cg"):
            algorithm = DelayInferenceAlgorithm(routing, variance_method=method)
            estimate = algorithm.learn_variances(campaign)
            assert estimate.num_links == routing.num_links
            # Unweighted sparse solvers land near the weighted default on
            # a well-conditioned system.
            assert np.corrcoef(estimate.variances, wls.variances)[0, 1] > 0.9
