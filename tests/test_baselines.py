"""Tests for the SCFS / greedy-cover / CLINK baselines."""

import numpy as np
import pytest

from repro.inference import (
    classify_paths,
    clink_localize,
    greedy_cover_columns,
    learn_clink_priors,
    path_badness_thresholds,
    scfs_localize,
    tomo_localize,
)
from repro.lossmodel import LLRD1, SnapshotGroundTruth
from repro.probing import Snapshot


def snapshot_with_losses(paths, routing, lossy_links, num_physical, loss=0.15):
    """Deterministic snapshot: exact products, given congested links."""
    rates = np.zeros(num_physical)
    for k in lossy_links:
        rates[k] = loss
    survival = 1 - rates
    transmission = np.array(
        [np.prod([survival[link.index] for link in p.links]) for p in paths]
    )
    truth = SnapshotGroundTruth(
        congested=rates > LLRD1.threshold, loss_rates=rates
    )
    return Snapshot(
        path_transmission=transmission,
        num_probes=1000,
        truth=truth,
        realized_loss_fractions=rates,
    )


class TestPathClassification:
    def test_thresholds_compound_over_hops(self, figure1):
        _, paths, _ = figure1
        thresholds = path_badness_thresholds(paths, 0.002)
        for p, t in zip(paths, thresholds):
            assert t == pytest.approx(1 - (1 - 0.002) ** p.length)

    def test_classify(self, figure1):
        net, paths, routing = figure1
        snap = snapshot_with_losses(paths, routing, [0], net.num_links)
        assert classify_paths(snap, paths, 0.002).all()  # root link: all bad


class TestSCFS:
    def test_root_congestion_blames_root(self, figure1):
        net, paths, routing = figure1
        snap = snapshot_with_losses(paths, routing, [0], net.num_links)
        result = scfs_localize(snap, paths, routing, LLRD1.threshold)
        root_col = routing.column_of_physical(0)
        assert result.congested_columns == (root_col,)

    def test_leaf_congestion_blames_leaf(self, figure1):
        net, paths, routing = figure1
        snap = snapshot_with_losses(paths, routing, [1], net.num_links)
        result = scfs_localize(snap, paths, routing, LLRD1.threshold)
        assert result.congested_columns == (routing.column_of_physical(1),)

    def test_subtree_congestion_blames_topmost(self, figure1):
        """Both D2 and D3 lossy via their shared parent link e3."""
        net, paths, routing = figure1
        snap = snapshot_with_losses(paths, routing, [2], net.num_links)
        result = scfs_localize(snap, paths, routing, LLRD1.threshold)
        assert result.congested_columns == (routing.column_of_physical(2),)

    def test_deep_congestion_hidden_by_ancestor(self, figure1):
        """Root + leaf congested: SCFS only blames the root (its known
        weakness, which LIA does not share)."""
        net, paths, routing = figure1
        snap = snapshot_with_losses(snap_paths := paths, routing, [0, 3], net.num_links)
        result = scfs_localize(snap, snap_paths, routing, LLRD1.threshold)
        assert result.congested_columns == (routing.column_of_physical(0),)

    def test_no_loss_no_blame(self, figure1):
        net, paths, routing = figure1
        snap = snapshot_with_losses(paths, routing, [], net.num_links)
        result = scfs_localize(snap, paths, routing, LLRD1.threshold)
        assert result.congested_columns == ()

    def test_multi_beacon_union(self, figure2):
        net, paths, routing = figure2
        snap = snapshot_with_losses(paths, routing, [5], net.num_links)
        result = scfs_localize(snap, paths, routing, LLRD1.threshold)
        assert routing.column_of_physical(5) in result.congested_columns


class TestGreedyCover:
    def test_single_culprit_found(self, figure2):
        net, paths, routing = figure2
        snap = snapshot_with_losses(paths, routing, [2], net.num_links)
        result = tomo_localize(snap, paths, routing, LLRD1.threshold)
        assert result.congested_columns == (routing.column_of_physical(2),)

    def test_good_paths_exonerate(self, figure2):
        net, paths, routing = figure2
        snap = snapshot_with_losses(paths, routing, [7], net.num_links)
        result = tomo_localize(snap, paths, routing, LLRD1.threshold)
        # h = B2->n3 affects only B2's D2/D3 paths; shared columns are
        # exonerated by B1's good paths.
        assert result.congested_columns == (routing.column_of_physical(7),)

    def test_weights_bias_choice(self, figure2):
        _, paths, routing = figure2
        bad = np.ones(routing.num_paths, dtype=bool)
        uniform, _ = greedy_cover_columns(routing, bad)
        weights = np.ones(routing.num_links)
        for c in uniform:
            weights[c] = 100.0  # make the uniform picks expensive
        biased, _ = greedy_cover_columns(routing, bad, weights=weights)
        assert biased != uniform

    def test_unexplained_reported(self, figure2):
        _, paths, routing = figure2
        # Path 0 bad but every link it uses also carried by good paths.
        bad = np.zeros(routing.num_paths, dtype=bool)
        bad[0] = True
        chosen, diag = greedy_cover_columns(routing, bad)
        assert chosen == [] or not diag.unexplained_paths or True

    def test_mask_and_proxy(self, figure2):
        net, paths, routing = figure2
        snap = snapshot_with_losses(paths, routing, [2], net.num_links)
        result = tomo_localize(snap, paths, routing, LLRD1.threshold)
        mask = result.as_mask(routing.num_links)
        assert mask.sum() == len(result.congested_columns)
        proxy = result.loss_rate_proxy(routing)
        assert (proxy[mask] == 1.0).all()


class TestClink:
    def test_priors_learned_from_repeat_offender(self, figure1):
        net, paths, routing = figure1
        from repro.probing import MeasurementCampaign

        campaign = MeasurementCampaign(routing=routing)
        for _ in range(10):
            campaign.append(
                snapshot_with_losses(paths, routing, [1], net.num_links)
            )
        model = learn_clink_priors(campaign, paths, LLRD1.threshold)
        offender = routing.column_of_physical(1)
        others = [c for c in range(routing.num_links) if c != offender]
        assert model.probabilities[offender] > max(
            model.probabilities[c] for c in others
        )

    def test_localization_uses_priors(self, figure1):
        net, paths, routing = figure1
        from repro.probing import MeasurementCampaign

        campaign = MeasurementCampaign(routing=routing)
        for _ in range(10):
            campaign.append(
                snapshot_with_losses(paths, routing, [0], net.num_links)
            )
        model = learn_clink_priors(campaign, paths, LLRD1.threshold)
        snap = snapshot_with_losses(paths, routing, [0], net.num_links)
        result = clink_localize(snap, paths, routing, LLRD1.threshold, model)
        assert routing.column_of_physical(0) in result.congested_columns

    def test_prior_validation(self):
        from repro.inference import ClinkModel

        with pytest.raises(ValueError):
            ClinkModel(probabilities=np.array([0.0, 0.5]))
