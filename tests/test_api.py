"""The unified Estimator protocol, registry and Scenario pipeline.

The acceptance bar of the api redesign: every backend is reachable via
``registry.get(name).fit(...).predict(...)``, specs round-trip, and the
adapters are *pinned byte-for-byte* to the pre-redesign call paths
(``LossInferenceAlgorithm``, ``DelayInferenceAlgorithm`` and the three
``*_localize`` free functions), so rewiring the experiments through
Scenario cannot change a single payload.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    LossInferenceAlgorithm,
    MeasurementCampaign,
    ProberConfig,
    ProbingSimulator,
)
from repro.api import (
    EstimatorSpec,
    InferenceResult,
    NotFittedError,
    Scenario,
    available,
    evaluate_forest,
    from_spec,
    get,
    register,
    unregister,
)
from repro.experiments.base import prepare_topology, scale_params
from repro.inference import (
    clink_localize,
    learn_clink_priors,
    scfs_localize,
    tomo_localize,
)
from repro.lossmodel import LLRD1
from repro.metrics import detection_outcome, evaluate_location
from repro.utils.rng import derive_seed

ALL_METHODS = ("clink", "delay", "lia", "scfs", "tomo")


@pytest.fixture(scope="module")
def workload():
    """A deterministic tree campaign shared by the adapter pins."""
    prepared = prepare_topology("tree", scale_params("tiny"), 91)
    simulator = ProbingSimulator(
        prepared.paths,
        prepared.topology.network.num_links,
        config=ProberConfig(probes_per_snapshot=300, congestion_probability=0.15),
    )
    campaign = simulator.run_campaign(13, prepared.routing, seed=92)
    return prepared, campaign


@pytest.fixture(scope="module")
def delay_workload():
    from repro.delay.prober import DelayProbingSimulator

    prepared = prepare_topology("tree", scale_params("tiny"), 93)
    simulator = DelayProbingSimulator(
        prepared.paths,
        prepared.topology.network.num_links,
        probes_per_snapshot=200,
        seed=94,
    )
    campaign = simulator.run_campaign(10, prepared.routing, seed=95)
    return prepared, campaign


class TestRegistry:
    def test_registry_is_complete(self):
        assert available() == ALL_METHODS

    @pytest.mark.parametrize("name", ALL_METHODS)
    def test_every_backend_constructible(self, name):
        estimator = get(name)
        assert estimator.name == name
        assert estimator.kind in ("rates", "binary", "delay")

    @pytest.mark.parametrize("name", ALL_METHODS)
    def test_spec_round_trip(self, name):
        estimator = get(name)
        spec = estimator.spec()
        assert spec.method == name
        rebuilt = from_spec(spec)
        assert rebuilt.spec() == spec
        # ... and through the JSON-safe dict form.
        assert from_spec(spec.to_dict()).spec() == spec
        # ... and through the adapter classmethod.
        assert type(estimator).from_spec(spec).spec() == spec

    def test_spec_round_trip_with_overrides(self):
        estimator = get("lia", reduction_strategy="gap", cutoff_scale=8.0)
        rebuilt = from_spec(estimator.spec())
        assert rebuilt.reduction_strategy == "gap"
        assert rebuilt.cutoff_scale == 8.0

    def test_unknown_method(self):
        with pytest.raises(ValueError, match="unknown estimator"):
            get("bogus")

    def test_register_external_backend(self):
        class Constant:
            name = "constant"
            kind = "rates"
            uses_training = False

            def fit(self, campaign, paths=None):
                self._n = campaign.routing.num_links
                return self

            def predict(self, snapshot):
                return InferenceResult(
                    method="constant", kind="rates", values=np.zeros(self._n)
                )

            def predict_batch(self, window):
                return [self.predict(s) for s in window]

            def spec(self):
                return EstimatorSpec("constant")

        try:
            register("constant", Constant)
            with pytest.raises(ValueError, match="already registered"):
                register("constant", Constant)
            assert "constant" in available()
            assert isinstance(get("constant"), Constant)
        finally:
            unregister("constant")
        assert "constant" not in available()


class TestAdapterPins:
    """Adapters must equal the historical call paths exactly."""

    def test_lia_matches_algorithm(self, workload):
        prepared, campaign = workload
        expected = LossInferenceAlgorithm(prepared.routing).run(campaign)

        training, target = campaign.split_training_target()
        result = get("lia").fit(training).predict(target)
        assert result.kind == "rates"
        assert np.array_equal(result.values, expected.loss_rates)
        assert np.array_equal(result.raw.transmission_rates,
                              expected.transmission_rates)

    def test_lia_predict_batch_matches_infer_batch(self, workload):
        prepared, campaign = workload
        training = MeasurementCampaign(
            routing=prepared.routing, snapshots=campaign.snapshots[:10]
        )
        window = campaign.snapshots[10:]
        lia = LossInferenceAlgorithm(prepared.routing)
        estimate = lia.learn_variances(training)
        expected = lia.infer_batch(window, estimate)

        results = get("lia").fit(training).predict_batch(window)
        assert len(results) == len(expected)
        for got, want in zip(results, expected):
            assert np.array_equal(got.values, want.loss_rates)

    def test_scfs_matches_free_function(self, workload):
        prepared, campaign = workload
        training, target = campaign.split_training_target()
        expected = scfs_localize(
            target, prepared.paths, prepared.routing, LLRD1.threshold
        )
        result = (
            get("scfs", link_threshold=LLRD1.threshold)
            .fit(training, paths=prepared.paths)
            .predict(target)
        )
        assert result.kind == "binary"
        assert result.congested_columns == expected.congested_columns
        assert np.array_equal(
            result.values, expected.loss_rate_proxy(prepared.routing)
        )

    def test_tomo_matches_free_function(self, workload):
        prepared, campaign = workload
        training, target = campaign.split_training_target()
        expected = tomo_localize(
            target, prepared.paths, prepared.routing, LLRD1.threshold
        )
        result = (
            get("tomo", link_threshold=LLRD1.threshold)
            .fit(training, paths=prepared.paths)
            .predict(target)
        )
        assert result.congested_columns == expected.congested_columns

    def test_clink_matches_free_functions(self, workload):
        prepared, campaign = workload
        training, target = campaign.split_training_target()
        model = learn_clink_priors(
            training, prepared.paths, LLRD1.threshold, smoothing=1.0
        )
        expected = clink_localize(
            target, prepared.paths, prepared.routing, LLRD1.threshold, model
        )
        result = (
            get("clink", link_threshold=LLRD1.threshold)
            .fit(training, paths=prepared.paths)
            .predict(target)
        )
        assert result.congested_columns == expected.congested_columns

    def test_delay_matches_algorithm(self, delay_workload):
        from repro.delay.inference import DelayInferenceAlgorithm

        prepared, campaign = delay_workload
        training, target = campaign.split_training_target()
        algorithm = DelayInferenceAlgorithm(prepared.routing)
        estimate = algorithm.learn_variances(training)
        expected = algorithm.infer(target, estimate)

        result = get("delay").fit(training).predict(target)
        assert result.kind == "delay"
        assert np.array_equal(result.values, expected.delay_deviations)
        assert np.array_equal(result.raw.kept_columns, expected.kept_columns)

    def test_predict_before_fit_raises(self, workload):
        prepared, campaign = workload
        with pytest.raises(NotFittedError):
            get("lia").predict(campaign[-1])

    def test_binary_without_paths_raises(self, workload):
        prepared, campaign = workload
        training, _ = campaign.split_training_target()
        with pytest.raises(ValueError, match="paths"):
            get("scfs").fit(training)


class TestInferenceResult:
    def test_kind_validation(self):
        with pytest.raises(ValueError, match="kind"):
            InferenceResult(method="x", kind="bogus", values=np.zeros(3))

    def test_congested_mask_needs_threshold_for_rates(self):
        result = InferenceResult(
            method="x", kind="rates", values=np.array([0.0, 0.5])
        )
        with pytest.raises(ValueError, match="threshold"):
            result.congested_mask()
        assert result.congested_mask(0.1).tolist() == [False, True]

    def test_delay_result_has_no_loss_rates(self):
        result = InferenceResult(
            method="delay", kind="delay", values=np.array([1.0])
        )
        with pytest.raises(ValueError, match="deviations"):
            _ = result.loss_rates


class TestScenario:
    """The declarative pipeline equals the historical hand-wired loop."""

    GRID = (4, 8)

    def _hand_wired(self, seed):
        """The pre-redesign fig5-style trial wiring, verbatim."""
        params = scale_params("tiny")
        prepared = prepare_topology("tree", params, derive_seed(seed, 0))
        simulator = ProbingSimulator(
            prepared.paths,
            prepared.topology.network.num_links,
            model=LLRD1,
            config=ProberConfig(
                probes_per_snapshot=params.probes, congestion_probability=0.10
            ),
        )
        max_m = max(self.GRID)
        campaign = simulator.run_campaign(
            max_m + 1, prepared.routing, seed=derive_seed(seed, 1)
        )
        target = campaign[-1]
        truth = target.virtual_congested(prepared.routing)
        lia = LossInferenceAlgorithm(prepared.routing)
        per_m = {}
        for m in self.GRID:
            sub = MeasurementCampaign(
                routing=campaign.routing,
                snapshots=campaign.snapshots[max_m - m : max_m],
            )
            result = lia.infer(target, lia.learn_variances(sub))
            per_m[m] = evaluate_location(
                result.loss_rates, truth, prepared.routing, LLRD1.threshold
            )
        localized = scfs_localize(
            target, prepared.paths, prepared.routing, LLRD1.threshold
        )
        scfs = detection_outcome(
            localized.as_mask(prepared.routing.num_links), truth
        )
        return per_m, scfs

    def _scenario(self):
        params = scale_params("tiny")
        return Scenario(
            topology="tree",
            params=params,
            prober=ProberConfig(
                probes_per_snapshot=params.probes, congestion_probability=0.10
            ),
            model=LLRD1,
            training_grid=self.GRID,
            estimators=(
                EstimatorSpec("lia"),
                EstimatorSpec("scfs", {"link_threshold": LLRD1.threshold}),
            ),
        )

    def test_scenario_is_seed_for_seed_identical(self):
        seed = 41
        per_m, scfs = self._hand_wired(seed)
        outcome = self._scenario().run(seed=seed)
        for m in self.GRID:
            assert outcome.evaluation("lia", m).detection == per_m[m]
        assert outcome.evaluation("scfs").detection == scfs

    def test_non_training_estimators_evaluated_once(self):
        outcome = self._scenario().run(seed=42)
        lia_evals = [e for e in outcome.evaluations if e.label == "lia"]
        scfs_evals = [e for e in outcome.evaluations if e.label == "scfs"]
        assert [e.num_training for e in lia_evals] == list(self.GRID)
        assert [e.num_training for e in scfs_evals] == [None]
        assert outcome.labels() == ("lia", "scfs")

    def test_multi_target_scenario_batches(self):
        params = scale_params("tiny")
        scenario = Scenario(
            topology="tree",
            params=params,
            prober=ProberConfig(probes_per_snapshot=params.probes),
            num_training=6,
            num_targets=4,
        )
        outcome = scenario.run(seed=7)
        evaluation = outcome.evaluations[0]
        assert len(evaluation.results) == 4
        assert len(outcome.targets) == 4
        assert len(evaluation.detections) == 4

    def test_accuracy_report_present_for_rate_estimators(self):
        outcome = self._scenario().run(seed=8)
        assert outcome.evaluation("lia", max(self.GRID)).accuracy is not None
        assert outcome.evaluation("scfs").accuracy is None

    def test_ambiguous_evaluation_lookup(self):
        outcome = self._scenario().run(seed=9)
        with pytest.raises(KeyError, match="several"):
            outcome.evaluation("lia")
        with pytest.raises(KeyError, match="no evaluation"):
            outcome.evaluation("nope")

    def test_validation_errors(self):
        with pytest.raises(ValueError, match="num_targets"):
            Scenario(num_targets=0)
        with pytest.raises(ValueError, match="training_grid"):
            Scenario(training_grid=())
        with pytest.raises(ValueError, match="estimator"):
            Scenario(estimators=())
        with pytest.raises(ValueError, match="sizing params"):
            Scenario(params=None).prepare(0)

    def test_grid_exceeding_campaign_raises(self, workload):
        prepared, campaign = workload
        scenario = Scenario(training_grid=(50,), params=None)
        with pytest.raises(ValueError, match="exceeds"):
            scenario.evaluate(prepared, campaign)


class TestScenarioSpec:
    """Scenario.spec()/from_spec(): the declarative JSON round-trip."""

    def _scenario(self, **overrides):
        from repro.lossmodel import GilbertProcess

        params = scale_params("tiny")
        fields = dict(
            topology="tree",
            params=params,
            prober=ProberConfig(
                probes_per_snapshot=200, congestion_probability=0.12
            ),
            model=LLRD1,
            process=GilbertProcess(stay_bad=0.5),
            training_grid=(3, 6),
            estimators=(
                EstimatorSpec("lia"),
                EstimatorSpec("scfs", {"link_threshold": 0.002}),
            ),
            campaign_salt=4,
        )
        fields.update(overrides)
        return Scenario(**fields)

    def test_json_round_trip(self):
        import json

        scenario = self._scenario()
        spec = json.loads(json.dumps(scenario.spec()))
        rebuilt = Scenario.from_spec(spec)
        assert rebuilt.spec() == scenario.spec()

    def test_congestion_traffic_round_trips(self):
        import json

        from repro.netsim.sim import TrafficConfig

        scenario = self._scenario(
            process=None,
            traffic=TrafficConfig(kind="congestion", buffer_packets=8),
        )
        spec = json.loads(json.dumps(scenario.spec()))
        rebuilt = Scenario.from_spec(spec)
        assert rebuilt.traffic == scenario.traffic
        assert rebuilt.spec() == scenario.spec()

    def test_rebuilt_scenario_is_seed_identical(self):
        scenario = self._scenario()
        rebuilt = Scenario.from_spec(scenario.spec())
        a = scenario.run(seed=17)
        b = rebuilt.run(seed=17)
        for m in (3, 6):
            assert a.evaluation("lia", m).detection == b.evaluation(
                "lia", m
            ).detection

    def test_custom_model_round_trips_by_fields(self):
        from dataclasses import replace

        custom = replace(LLRD1, name="custom-model")
        scenario = self._scenario(model=custom)
        rebuilt = Scenario.from_spec(scenario.spec())
        assert rebuilt.model == custom

    def test_congestion_traffic_excludes_explicit_process(self):
        from repro.netsim.sim import TrafficConfig

        with pytest.raises(ValueError, match="its own loss process"):
            self._scenario(traffic=TrafficConfig(kind="congestion"))

    def test_hooks_and_custom_processes_refuse_to_serialise(self):
        from repro.lossmodel import CongestionLossProcess

        scenario = self._scenario(
            propensities=lambda prepared, seed: np.zeros(1)
        )
        with pytest.raises(ValueError, match="cannot be serialised"):
            scenario.spec()
        process = CongestionLossProcess([(0,)], 2)
        with pytest.raises(ValueError, match="no\\s+declarative form"):
            self._scenario(process=process).spec()

    def test_from_spec_rejects_unknown_names(self):
        with pytest.raises(ValueError, match="unknown loss-rate model"):
            Scenario.from_spec({"model": "nope"})
        with pytest.raises(ValueError, match="unknown loss process"):
            Scenario.from_spec({"process": {"kind": "laplace"}})


class TestDistributed:
    """DistributedEstimator: wire fidelity + one kept-column group per shard."""

    @pytest.fixture(scope="class")
    def document_and_window(self, workload):
        from repro.io.serialization import CampaignDocument

        prepared, campaign = workload
        document = CampaignDocument(
            network=prepared.topology.network,
            beacons=prepared.topology.beacons,
            destinations=prepared.topology.destinations,
            paths=prepared.paths,
            snapshots=list(campaign.snapshots[:9]),
        )
        return document, list(campaign.snapshots[9:])

    def test_serial_distributed_matches_local(self, document_and_window):
        from repro.api import DistributedEstimator

        document, window = document_and_window
        local = get("lia").fit(document.campaign(), paths=document.paths)
        dist = DistributedEstimator(EstimatorSpec("lia")).fit(document)
        local_results = local.predict_batch(window)
        dist_results = dist.predict_batch(window)
        for a, b in zip(local_results, dist_results):
            assert np.array_equal(a.values, b.values)
            assert a.kind == b.kind == "rates"
        # fixed probe count => one kept-column set => exactly one shard
        assert dist.runner.last_stats.shards_total == 1

    def test_process_backend_distributed_matches_local(self, document_and_window):
        from repro.api import DistributedEstimator
        from repro.runner import ParallelRunner

        document, window = document_and_window
        local = get("lia").fit(document.campaign(), paths=document.paths)
        dist = DistributedEstimator(
            EstimatorSpec("lia"),
            runner=ParallelRunner(n_jobs=2, backend="process"),
        ).fit(document)
        for a, b in zip(local.predict_batch(window), dist.predict_batch(window)):
            assert np.array_equal(a.values, b.values)

    def test_one_kept_column_group_per_shard(self, document_and_window):
        from repro.api import DistributedEstimator
        from repro.probing.snapshot import Snapshot

        document, window = document_and_window
        # Mix probe counts: the threshold cutoff scales with 1/probes, so
        # distinct counts generally reduce to distinct kept-column sets.
        mixed = [
            Snapshot(
                path_transmission=snap.path_transmission,
                num_probes=(300 if i % 2 else 40),
            )
            for i, snap in enumerate(window)
        ]
        local = get("lia").fit(document.campaign(), paths=document.paths)
        dist = DistributedEstimator(EstimatorSpec("lia")).fit(document)
        distinct_groups = {dist._group_key(snap) for snap in mixed}
        dist_results = dist.predict_batch(mixed)
        assert dist.runner.last_stats.shards_total == len(distinct_groups)
        for a, b in zip(local.predict_batch(mixed), dist_results):
            assert np.array_equal(a.values, b.values)

    def test_binary_estimator_round_trips(self, document_and_window):
        from repro.api import DistributedEstimator

        document, window = document_and_window
        local = get("scfs").fit(document.campaign(), paths=document.paths)
        dist = DistributedEstimator(EstimatorSpec("scfs")).fit(document)
        for a, b in zip(local.predict_batch(window), dist.predict_batch(window)):
            assert np.array_equal(a.values, b.values)
            assert a.congested_columns == b.congested_columns
            assert b.kind == "binary"

    def test_predict_before_fit_raises(self):
        from repro.api import DistributedEstimator

        with pytest.raises(NotFittedError):
            DistributedEstimator(EstimatorSpec("lia")).predict_batch([])

    def test_requires_shard_size_one(self):
        from repro.api import DistributedEstimator
        from repro.runner import ParallelRunner

        with pytest.raises(ValueError, match="shard_size=1"):
            DistributedEstimator(
                EstimatorSpec("lia"),
                runner=ParallelRunner(shard_size=2),
            )

    def test_helper_and_spec_round_trip(self):
        from repro.api import DistributedEstimator, distributed

        wrapper = distributed(EstimatorSpec("lia"))
        assert isinstance(wrapper, DistributedEstimator)
        assert wrapper.name == "lia" and wrapper.kind == "rates"
        assert wrapper.spec() == EstimatorSpec("lia")
        # dict form accepted too (config-file path)
        assert distributed({"method": "scfs"}).name == "scfs"


class TestEvaluateForest:
    """Forest-batched evaluation equals the sequential Scenario loop."""

    def _forest(self, num_trees=6, estimators=None, **overrides):
        params = scale_params("tiny")
        overrides.setdefault("num_training", 6)
        runs = []
        for i in range(num_trees):
            scenario = Scenario(
                topology="tree",
                params=params,
                prober=ProberConfig(
                    probes_per_snapshot=params.probes,
                    congestion_probability=0.12,
                ),
                model=LLRD1,
                estimators=estimators
                or (
                    EstimatorSpec("lia"),
                    EstimatorSpec("scfs", {"link_threshold": LLRD1.threshold}),
                ),
                **overrides,
            )
            seed = 700 + i
            prepared = scenario.prepare(seed)
            campaign = scenario.simulate(prepared, seed)
            runs.append((scenario, prepared, campaign))
        return runs

    @staticmethod
    def _assert_results_equal(batched, sequential):
        assert len(batched) == len(sequential)
        for got, want in zip(batched, sequential):
            assert len(got.targets) == len(want.targets)
            assert len(got.evaluations) == len(want.evaluations)
            for ge, we in zip(got.evaluations, want.evaluations):
                assert ge.label == we.label
                assert ge.num_training == we.num_training
                assert len(ge.results) == len(we.results)
                for gr, wr in zip(ge.results, we.results):
                    assert gr.method == wr.method and gr.kind == wr.kind
                    np.testing.assert_array_equal(gr.values, wr.values)
                assert repr(ge.detections) == repr(we.detections)
                assert repr(ge.accuracy) == repr(we.accuracy)

    def test_matches_sequential_evaluate_to_the_byte(self):
        runs = self._forest()
        batched = evaluate_forest(runs)
        sequential = [s.evaluate(p, c) for s, p, c in runs]
        self._assert_results_equal(batched, sequential)

    def test_training_grid_forest_matches_sequential(self):
        runs = self._forest(num_trees=4, num_training=None, training_grid=(4, 8))
        self._assert_results_equal(
            evaluate_forest(runs), [s.evaluate(p, c) for s, p, c in runs]
        )

    def test_multi_target_runs_fall_through_unbatched(self):
        # Multi-target windows take the sequential predict_batch path, so
        # a mixed forest must still match run for run.
        runs = self._forest(
            num_trees=3,
            estimators=(EstimatorSpec("lia"),),
            num_targets=3,
        )
        self._assert_results_equal(
            evaluate_forest(runs), [s.evaluate(p, c) for s, p, c in runs]
        )

    def test_consumer_streams_in_run_order(self):
        runs = self._forest(num_trees=2)
        calls = []

        def consumer(label, num_training, index, target, result):
            calls.append((label, num_training, index))
            assert isinstance(result, InferenceResult)

        evaluate_forest(runs, target_consumer=consumer)
        expected = []
        for scenario, prepared, campaign in runs:
            scenario.evaluate(
                prepared,
                campaign,
                target_consumer=lambda label, m, i, t, r: expected.append(
                    (label, m, i)
                ),
            )
        assert calls == expected

    def test_empty_forest(self):
        assert evaluate_forest([]) == []

    def test_grid_exceeding_campaign_raises(self):
        runs = self._forest(num_trees=1)
        scenario, prepared, campaign = runs[0]
        bad = Scenario(training_grid=(50,), params=None)
        with pytest.raises(ValueError, match="exceeds"):
            evaluate_forest([(bad, prepared, campaign)])
