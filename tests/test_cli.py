"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestAudit:
    def test_tree_audit_exits_zero(self, capsys):
        code = main(["audit", "--topology", "tree", "--size", "60", "--seed", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "variances identifiable: True" in out

    @pytest.mark.parametrize(
        "kind", ["planetlab", "dimes", "barabasi-albert", "waxman"]
    )
    def test_mesh_audits(self, kind, capsys):
        code = main(
            ["audit", "--topology", kind, "--size", "80", "--hosts", "8",
             "--seed", "2"]
        )
        assert code == 0


class TestSimulateInfer:
    def test_round_trip(self, tmp_path, capsys):
        doc = tmp_path / "campaign.json"
        code = main(
            [
                "simulate", "--topology", "tree", "--size", "80",
                "--snapshots", "12", "--probes", "300", "--seed", "3",
                "--out", str(doc),
            ]
        )
        assert code == 0
        assert doc.exists()

        code = main(["infer", str(doc), "--threshold", "0.002"])
        assert code == 0
        out = capsys.readouterr().out
        assert "trained on 11 snapshots" in out

    def test_variance_solver_flag(self, tmp_path, capsys):
        """--variance-solver threads through the registry into LIA."""
        doc = tmp_path / "campaign.json"
        main(
            [
                "simulate", "--topology", "tree", "--size", "80",
                "--snapshots", "12", "--probes", "300", "--seed", "3",
                "--out", str(doc),
            ]
        )
        capsys.readouterr()
        for solver in ("sparse", "cg"):
            code = main(["infer", str(doc), "--variance-solver", solver])
            assert code == 0
            assert "trained on 11 snapshots" in capsys.readouterr().out
        code = main(
            ["compare", str(doc), "--methods", "lia", "--variance-solver",
             "sparse"]
        )
        assert code == 0

    def test_infer_finds_congested(self, tmp_path, capsys):
        doc = tmp_path / "campaign.json"
        main(
            [
                "simulate", "--topology", "tree", "--size", "100",
                "--snapshots", "16", "--probes", "400",
                "--congestion", "0.15", "--seed", "4", "--out", str(doc),
            ]
        )
        capsys.readouterr()
        main(["infer", str(doc)])
        out = capsys.readouterr().out
        assert "links above t_l" in out
        # With 15% congestion, some links should be reported.
        count = int(out.split(" links above")[0].rsplit(" ", 1)[-1])
        assert count >= 1

    def test_congestion_traffic_round_trip(self, tmp_path, capsys):
        """simulate --traffic congestion -> compare, the CI smoke path."""
        doc = tmp_path / "congested.json"
        code = main(
            [
                "simulate", "--topology", "tree", "--size", "40",
                "--hosts", "8", "--snapshots", "6", "--probes", "200",
                "--traffic", "congestion", "--seed", "5", "--out", str(doc),
            ]
        )
        assert code == 0
        capsys.readouterr()
        assert main(["compare", str(doc), "--methods", "lia,scfs"]) == 0
        out = capsys.readouterr().out
        assert "lia:" in out and "links flagged" in out

    def test_congestion_traffic_is_seed_deterministic(self, tmp_path):
        import json

        docs = []
        for name in ("a.json", "b.json"):
            doc = tmp_path / name
            assert (
                main(
                    [
                        "simulate", "--topology", "tree", "--size", "40",
                        "--hosts", "8", "--snapshots", "4", "--probes", "150",
                        "--traffic", "congestion", "--seed", "9",
                        "--out", str(doc),
                    ]
                )
                == 0
            )
            docs.append(json.loads(doc.read_text()))
        assert docs[0] == docs[1]

    def test_internet_model_and_propensity(self, tmp_path):
        doc = tmp_path / "c.json"
        code = main(
            [
                "simulate", "--topology", "planetlab", "--hosts", "8",
                "--snapshots", "8", "--probes", "200",
                "--model", "internet", "--truth-mode", "propensity",
                "--seed", "5", "--out", str(doc),
            ]
        )
        assert code == 0
        assert main(["infer", str(doc)]) == 0


class TestMethodDispatch:
    @pytest.fixture(scope="class")
    def document(self, tmp_path_factory):
        doc = tmp_path_factory.mktemp("cli") / "campaign.json"
        assert (
            main(
                [
                    "simulate", "--topology", "tree", "--size", "90",
                    "--snapshots", "10", "--probes", "300",
                    "--congestion", "0.15", "--seed", "6", "--out", str(doc),
                ]
            )
            == 0
        )
        return str(doc)

    @pytest.mark.parametrize("method", ["lia", "scfs", "clink", "tomo"])
    def test_infer_dispatches_through_registry(self, method, document, capsys):
        assert main(["infer", document, "--method", method]) == 0
        out = capsys.readouterr().out
        assert "trained on 9 snapshots" in out
        if method == "lia":
            assert "links above t_l" in out
        else:
            assert f"flagged congested by {method}" in out

    def test_infer_rejects_delay_on_loss_document(self, document, capsys):
        assert main(["infer", document, "--method", "delay"]) == 2
        assert "does not consume loss campaign" in capsys.readouterr().err

    def test_compare_side_by_side(self, document, capsys):
        assert main(["compare", document]) == 0
        out = capsys.readouterr().out
        for method in ("lia", "scfs", "clink", "tomo"):
            assert f"{method}:" in out and "links flagged" in out
        # side-by-side table: one column per method
        header = [
            line for line in out.splitlines() if line.startswith("link column")
        ]
        assert header and all(
            m in header[0] for m in ("lia", "scfs", "clink", "tomo")
        )

    def test_compare_subset_of_methods(self, document, capsys):
        assert main(["compare", document, "--methods", "lia,tomo"]) == 0
        out = capsys.readouterr().out
        assert "scfs" not in out

    def test_compare_rejects_unknown_method(self, document, capsys):
        assert main(["compare", document, "--methods", "lia,bogus"]) == 2
        assert "unknown method" in capsys.readouterr().err

    def test_compare_agrees_with_infer(self, document, capsys):
        """The comparison table reuses the exact single-method pipelines."""
        main(["infer", document, "--method", "lia"])
        single = capsys.readouterr().out
        count = int(single.split(" links above")[0].rsplit(" ", 1)[-1])
        main(["compare", document, "--methods", "lia"])
        compared = capsys.readouterr().out
        assert f"lia: {count} links flagged" in compared


class TestExperimentsVerb:
    def test_static_choices_match_registry(self):
        from repro.api import registry
        from repro.cli import (
            EXPERIMENT_CHOICES,
            LOSS_METHOD_CHOICES,
            METHOD_CHOICES,
            SCALE_CHOICES,
            TRAFFIC_CHOICES,
            VARIANCE_SOLVER_CHOICES,
        )
        from repro.core.variance import VARIANCE_METHODS
        from repro.experiments import EXPERIMENTS, SCALES
        from repro.netsim.sim import TRAFFIC_KINDS

        assert sorted(EXPERIMENT_CHOICES) == sorted(EXPERIMENTS)
        assert SCALE_CHOICES == SCALES
        assert METHOD_CHOICES == registry.available()
        assert set(LOSS_METHOD_CHOICES) == set(METHOD_CHOICES) - {"delay"}
        assert VARIANCE_SOLVER_CHOICES == VARIANCE_METHODS
        assert TRAFFIC_CHOICES == TRAFFIC_KINDS

    def test_timing_routes_through_runner(self, capsys):
        # timing is one (non-cacheable) trial through the runner now, so
        # the stats line is real — no last_stats workaround needed.
        assert main(["experiments", "timing", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "[timing finished in" in out
        assert "1 trials executed, 0 recalled from cache" in out

    def test_timing_never_cached(self, tmp_path, capsys):
        argv = [
            "experiments", "timing", "--scale", "tiny",
            "--cache-dir", str(tmp_path),
        ]
        for _ in range(2):
            assert main(argv) == 0
            out = capsys.readouterr().out
            # wall-clock measurements re-execute on every invocation
            assert "1 trials executed, 0 recalled from cache" in out

    def test_runs_and_reports_runner_stats(self, capsys):
        code = main(["experiments", "fig5", "--scale", "tiny", "--jobs", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "== fig5 ==" in out
        assert "2 trials executed, 0 recalled from cache" in out
        assert "backend=serial" in out

    def test_backend_flag_is_payload_identical(self, capsys):
        base_argv = ["experiments", "fig5", "--scale", "tiny", "--seed", "0"]
        assert main(base_argv + ["--jobs", "1"]) == 0
        sequential = capsys.readouterr().out
        for backend in ("thread", "process"):
            argv = base_argv + ["--jobs", "2", "--backend", backend]
            assert main(argv) == 0
            out = capsys.readouterr().out
            assert f"backend={backend}" in out
            # identical rendered tables: backend changes nothing but speed
            assert out.split("[fig5")[0] == sequential.split("[fig5")[0]

    def test_store_dir_streams_payloads(self, tmp_path, capsys):
        store = tmp_path / "results"
        argv = [
            "experiments", "fig6", "--scale", "tiny",
            "--store-dir", str(store),
        ]
        assert main(argv) == 0
        capsys.readouterr()
        spills = list(store.glob("fig6-*.jsonl"))
        assert len(spills) == 1
        # one JSONL record per trial
        assert len(spills[0].read_text().splitlines()) == 2

    def test_congestion_experiment_is_backend_deterministic(
        self, tmp_path, capsys
    ):
        """Same seed, serial vs process backend, byte-identical payloads.

        The packet simulator's whole determinism contract in one test:
        each trial's drop realisations are a pure function of the trial
        seed, so the result stores diff clean across backends
        (scripts/diff_result_stores.py, the same check used in CI).
        """
        import subprocess
        import sys
        from pathlib import Path

        stores = {}
        outputs = {}
        for label, extra in (
            ("serial", ["--jobs", "1"]),
            ("process", ["--jobs", "2", "--backend", "process"]),
        ):
            store = tmp_path / label
            argv = [
                "experiments", "congestion", "--scale", "tiny", "--seed", "0",
                "--store-dir", str(store),
            ] + extra
            assert main(argv) == 0
            outputs[label] = capsys.readouterr().out
            spills = list(store.glob("congestion-*.jsonl"))
            assert len(spills) == 1
            stores[label] = spills[0]
        # rendered tables agree ...
        assert (
            outputs["serial"].split("[congestion")[0]
            == outputs["process"].split("[congestion")[0]
        )
        # ... and so does every stored trial payload, byte for byte
        script = Path(__file__).resolve().parents[1] / "scripts"
        proc = subprocess.run(
            [
                sys.executable, str(script / "diff_result_stores.py"),
                str(stores["serial"]), str(stores["process"]),
            ],
            capture_output=True, text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_bad_backend_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["experiments", "fig5", "--backend", "carrier-pigeon"])

    def test_cache_dir_skips_rerun(self, tmp_path, capsys):
        argv = [
            "experiments", "fig6", "--scale", "tiny",
            "--cache-dir", str(tmp_path),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "2 trials executed, 0 recalled from cache" in first

        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "0 trials executed, 2 recalled from cache" in second
        # identical rendered tables: the cache changes nothing but time
        assert first.split("[fig6")[0] == second.split("[fig6")[0]


class TestRemoteFlags:
    """The remote-backend knobs on `repro experiments` and `repro worker`."""

    @staticmethod
    def _parse(argv):
        import argparse

        from repro.runner.args import RunnerArgs, add_runner_arguments

        parser = argparse.ArgumentParser()
        add_runner_arguments(parser)
        return RunnerArgs.from_namespace(parser.parse_args(argv))

    def test_remote_flags_become_backend_options(self):
        args = self._parse(
            ["--backend", "remote", "--workers", "alpha,beta",
             "--bind", "0.0.0.0:7787"]
        )
        assert args.backend_options() == {
            "workers": "alpha,beta", "bind": "0.0.0.0:7787",
        }
        args = self._parse(["--backend", "remote", "--remote-workers", "3"])
        assert args.backend_options() == {"spawn_workers": 3}

    def test_remote_flags_require_remote_backend(self):
        args = self._parse(["--workers", "2"])
        with pytest.raises(ValueError, match="--backend remote"):
            args.backend_options()

    def test_plain_flags_build_without_options(self):
        assert self._parse(["--jobs", "2"]).backend_options() == {}

    def test_bad_flag_values_rejected_at_parse_time(self):
        with pytest.raises(SystemExit):
            self._parse(["--remote-workers", "0"])
        with pytest.raises(SystemExit):
            self._parse(["--workers", "  "])


class TestWorkerVerb:
    def test_no_coordinator_exits_one(self, capsys):
        code = main(["worker", "127.0.0.1:1", "--retry-seconds", "0.2"])
        assert code == 1
        assert "no coordinator" in capsys.readouterr().out


class TestKernelTierFlag:
    """The global --kernel-tier flag routes into the kernel registry."""

    @pytest.fixture(autouse=True)
    def reset_tier(self, monkeypatch):
        from repro.core.kernels import ENV_VAR, set_kernel_tier

        monkeypatch.delenv(ENV_VAR, raising=False)
        set_kernel_tier(None)
        yield
        set_kernel_tier(None)

    AUDIT = ["audit", "--topology", "tree", "--size", "60", "--seed", "1"]

    def test_numpy_tier_accepted(self, capsys):
        from repro.core.kernels import current_tier

        code = main(["--kernel-tier", "numpy"] + self.AUDIT)
        assert code == 0
        assert current_tier() == "numpy"

    def test_default_leaves_tier_alone(self):
        from repro.core.kernels import available_tiers, current_tier

        assert main(self.AUDIT) == 0
        assert current_tier() == available_tiers()[0]

    def test_missing_numba_is_a_loud_failure(self, capsys):
        from repro.core.kernels import numba_available

        if numba_available():
            pytest.skip("numba installed; the explicit request succeeds here")
        code = main(["--kernel-tier", "numba"] + self.AUDIT)
        assert code == 2
        err = capsys.readouterr().err
        assert "--kernel-tier" in err and "numba is not installed" in err

    def test_unknown_tier_rejected_at_parse_time(self, capsys):
        with pytest.raises(SystemExit):
            main(["--kernel-tier", "turbo"] + self.AUDIT)
        assert "invalid choice" in capsys.readouterr().err
