"""Unit tests for the directed graph model and routing."""

import pytest

from repro.topology.graph import Network, Path, build_paths


def line_network(n: int) -> Network:
    net = Network()
    for i in range(n - 1):
        net.add_link(i, i + 1)
    return net


class TestNetworkConstruction:
    def test_nodes_and_links_counted(self):
        net = Network()
        net.add_link(0, 1)
        net.add_link(1, 2)
        assert net.num_nodes == 3
        assert net.num_links == 2

    def test_duplicate_link_rejected(self):
        net = Network()
        net.add_link(0, 1)
        with pytest.raises(ValueError, match="duplicate"):
            net.add_link(0, 1)

    def test_reverse_direction_is_distinct(self):
        net = Network()
        a = net.add_link(0, 1)
        b = net.add_link(1, 0)
        assert a.index != b.index

    def test_self_loop_rejected(self):
        net = Network()
        with pytest.raises(ValueError, match="self-loop"):
            net.add_link(3, 3)

    def test_negative_node_rejected(self):
        net = Network()
        with pytest.raises(ValueError):
            net.add_node(-1)

    def test_add_duplex(self):
        net = Network()
        fwd, back = net.add_duplex(0, 1)
        assert (fwd.tail, fwd.head) == (0, 1)
        assert (back.tail, back.head) == (1, 0)

    def test_link_lookup_by_endpoints(self):
        net = Network()
        link = net.add_link(4, 7)
        assert net.find_link(4, 7) is link
        assert net.find_link(7, 4) is None

    def test_degrees(self):
        net = Network()
        net.add_link(0, 1)
        net.add_link(0, 2)
        net.add_link(3, 0)
        assert net.out_degree(0) == 2
        assert net.in_degree(0) == 1
        assert net.degree(0) == 3


class TestRouting:
    def test_route_on_line(self):
        net = line_network(5)
        hops = net.route(0, 4)
        assert [h.tail for h in hops] == [0, 1, 2, 3]

    def test_route_unreachable_returns_none(self):
        net = Network()
        net.add_link(0, 1)
        net.add_node(5)
        assert net.route(0, 5) is None

    def test_route_to_self_is_empty(self):
        net = line_network(3)
        assert net.routes_from(0, [0])[0] == []

    def test_shortest_path_is_shortest(self):
        net = Network()
        # 0 -> 1 -> 3 (length 2) and 0 -> 2a -> 2b -> 3 (length 3)
        net.add_link(0, 1)
        net.add_link(1, 3)
        net.add_link(0, 4)
        net.add_link(4, 5)
        net.add_link(5, 3)
        assert len(net.route(0, 3)) == 2

    def test_deterministic_tie_breaking(self):
        # Two equal-length routes; the canonical one must be stable.
        def build():
            net = Network()
            net.add_link(0, 1)
            net.add_link(0, 2)
            net.add_link(1, 3)
            net.add_link(2, 3)
            return net

        routes = [tuple(link.index for link in build().route(0, 3)) for _ in range(5)]
        assert len(set(routes)) == 1

    def test_unknown_source_raises(self):
        net = line_network(3)
        with pytest.raises(KeyError):
            net.shortest_path_tree(99)

    def test_is_connected_from(self):
        net = line_network(4)
        assert net.is_connected_from(0)
        assert not net.is_connected_from(3)  # directed line


class TestPath:
    def test_valid_path(self, figure1):
        net, paths, _ = figure1
        for p in paths:
            assert p.links[0].tail == p.source
            assert p.links[-1].head == p.dest

    def test_empty_path_rejected(self):
        with pytest.raises(ValueError, match="at least one link"):
            Path(index=0, source=0, dest=0, links=())

    def test_discontinuous_path_rejected(self):
        net = Network()
        a = net.add_link(0, 1)
        b = net.add_link(2, 3)
        with pytest.raises(ValueError, match="discontinuous"):
            Path(index=0, source=0, dest=3, links=(a, b))

    def test_wrong_source_rejected(self):
        net = Network()
        a = net.add_link(0, 1)
        with pytest.raises(ValueError, match="start"):
            Path(index=0, source=5, dest=1, links=(a,))

    def test_node_sequence(self):
        net = line_network(4)
        p = Path(index=0, source=0, dest=3, links=tuple(net.route(0, 3)))
        assert p.node_sequence() == (0, 1, 2, 3)

    def test_traverses(self):
        net = line_network(3)
        p = Path(index=0, source=0, dest=2, links=tuple(net.route(0, 2)))
        assert p.traverses(0)
        assert not p.traverses(99)


class TestBuildPaths:
    def test_one_path_per_pair(self, figure2):
        net, paths, _ = figure2
        assert len(paths) == 6  # 2 beacons x 3 destinations

    def test_skips_self_pairs(self):
        net = Network()
        net.add_duplex(0, 1)
        paths = build_paths(net, beacons=[0, 1], destinations=[0, 1])
        assert len(paths) == 2

    def test_unreachable_raises_by_default(self):
        net = Network()
        net.add_link(0, 1)
        net.add_node(9)
        with pytest.raises(ValueError, match="unreachable"):
            build_paths(net, [0], [9])

    def test_unreachable_skipped_on_request(self):
        net = Network()
        net.add_link(0, 1)
        net.add_node(9)
        paths = build_paths(net, [0], [1, 9], skip_unreachable=True)
        assert len(paths) == 1

    def test_indices_are_dense(self, figure2):
        _, paths, _ = figure2
        assert [p.index for p in paths] == list(range(len(paths)))
