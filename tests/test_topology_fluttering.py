"""Tests for route-fluttering detection (Assumption T.2)."""

import pytest

from repro.topology.fluttering import (
    assert_no_fluttering,
    find_fluttering_pairs,
    paths_flutter,
    remove_fluttering_paths,
    shared_segments,
)
from repro.topology.graph import Network, Path


def fluttering_pair():
    """Two paths that meet, diverge, and meet again."""
    net = Network()
    a = net.add_link(0, 1)
    b1 = net.add_link(1, 2)
    b2 = net.add_link(1, 3)
    c1 = net.add_link(2, 4)
    c2 = net.add_link(3, 4)
    d = net.add_link(4, 5)
    p1 = Path(index=0, source=0, dest=5, links=(a, b1, c1, d))
    p2 = Path(index=1, source=0, dest=5, links=(a, b2, c2, d))
    return p1, p2


def nested_pair():
    """Two paths sharing one contiguous segment (legal)."""
    net = Network()
    a = net.add_link(0, 1)
    b = net.add_link(1, 2)
    c = net.add_link(2, 3)
    e = net.add_link(4, 1)
    f = net.add_link(2, 5)
    p1 = Path(index=0, source=0, dest=3, links=(a, b, c))
    p2 = Path(index=1, source=4, dest=5, links=(e, b, f))
    return p1, p2


class TestDetection:
    def test_fluttering_detected(self):
        p1, p2 = fluttering_pair()
        assert paths_flutter(p1, p2)

    def test_contiguous_overlap_is_legal(self):
        p1, p2 = nested_pair()
        assert not paths_flutter(p1, p2)

    def test_disjoint_paths_do_not_flutter(self):
        net = Network()
        a = net.add_link(0, 1)
        b = net.add_link(2, 3)
        p1 = Path(index=0, source=0, dest=1, links=(a,))
        p2 = Path(index=1, source=2, dest=3, links=(b,))
        assert not paths_flutter(p1, p2)

    def test_shared_segments_counts_runs(self):
        p1, p2 = fluttering_pair()
        assert len(shared_segments(p1, p2)) == 2

    def test_find_pairs(self):
        p1, p2 = fluttering_pair()
        assert find_fluttering_pairs([p1, p2]) == [(0, 1)]

    def test_find_pairs_empty_for_tree(self, small_tree):
        _, paths, _ = small_tree
        assert find_fluttering_pairs(paths) == []

    def test_assert_raises_on_fluttering(self):
        p1, p2 = fluttering_pair()
        with pytest.raises(ValueError, match="T.2"):
            assert_no_fluttering([p1, p2])

    def test_assert_passes_on_clean(self, small_tree):
        _, paths, _ = small_tree
        assert_no_fluttering(paths)


class TestRemoval:
    def test_removal_clears_fluttering(self):
        p1, p2 = fluttering_pair()
        kept, removed = remove_fluttering_paths([p1, p2])
        assert len(kept) == 1
        assert len(removed) == 1
        assert find_fluttering_pairs(kept) == []

    def test_removal_reindexes(self):
        p1, p2 = fluttering_pair()
        q1, q2 = nested_pair()
        # Re-index the clean pair after the fluttering ones.
        q1 = Path(index=2, source=q1.source, dest=q1.dest, links=q1.links)
        q2 = Path(index=3, source=q2.source, dest=q2.dest, links=q2.links)
        kept, removed = remove_fluttering_paths([p1, p2, q1, q2])
        assert [p.index for p in kept] == list(range(len(kept)))
        assert len(kept) == 3

    def test_no_op_on_clean_paths(self, small_tree):
        _, paths, _ = small_tree
        kept, removed = remove_fluttering_paths(paths)
        assert removed == []
        assert len(kept) == len(paths)
