"""Shared fixtures: small topologies and pre-simulated campaigns.

Campaign simulation is the expensive part of the integration tests, so
the module-scoped fixtures run it once and the tests share the result
read-only.
"""

from __future__ import annotations

import pytest

from repro import (
    ProberConfig,
    ProbingSimulator,
    RoutingMatrix,
    build_paths,
    random_tree,
)
from repro.topology.examples import figure1_paths, figure2_paths
from repro.topology.generators import planetlab_like


@pytest.fixture(scope="session")
def figure1():
    net, paths = figure1_paths()
    return net, paths, RoutingMatrix.from_paths(paths)


@pytest.fixture(scope="session")
def figure2():
    net, paths = figure2_paths()
    return net, paths, RoutingMatrix.from_paths(paths)


@pytest.fixture(scope="session")
def small_tree():
    """A 120-node tree with paths and routing matrix (deterministic)."""
    topo = random_tree(num_nodes=120, seed=1234)
    paths = build_paths(topo.network, topo.beacons, topo.destinations)
    routing = RoutingMatrix.from_paths(paths)
    return topo, paths, routing


@pytest.fixture(scope="session")
def tree_campaign(small_tree):
    """21 snapshots over the small tree, fixed truth, packet fidelity."""
    topo, paths, routing = small_tree
    config = ProberConfig(probes_per_snapshot=400, congestion_probability=0.12)
    simulator = ProbingSimulator(
        paths, topo.network.num_links, config=config
    )
    campaign = simulator.run_campaign(21, routing, seed=99)
    return campaign


@pytest.fixture(scope="session")
def small_mesh():
    """A PlanetLab-like mesh with paths and routing matrix."""
    topo = planetlab_like(num_sites=8, seed=77)
    paths = build_paths(topo.network, topo.beacons, topo.destinations)
    routing = RoutingMatrix.from_paths(paths)
    return topo, paths, routing
