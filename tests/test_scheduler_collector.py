"""Tests for probe scheduling and the measurement collector."""

import numpy as np
import pytest

from repro.probing import (
    ProbeScheduler,
    restrict_campaign,
    split_paths,
)
from repro.probing.scheduler import PROBE_SIZE_BYTES


class TestScheduler:
    def test_paper_parameters(self):
        scheduler = ProbeScheduler()
        # 40-byte probes at 10 ms spacing = 4 KB/s per path; the 100 KB/s
        # cap allows 25 parallel paths -> 150 paths/minute (10 s each).
        assert scheduler.per_path_rate_bytes_per_s == pytest.approx(4000)
        assert scheduler.max_parallel_paths == 25
        assert scheduler.path_duration_s == pytest.approx(10.0)

    def test_rate_cap_honoured(self, small_tree):
        _, paths, _ = small_tree
        scheduler = ProbeScheduler()
        schedule = scheduler.schedule_round(paths, seed=1)
        for beacon in {p.source for p in paths}:
            rate = schedule.beacon_send_rate_bytes_per_s(beacon)
            assert rate <= 100_000 * 1.01

    def test_all_paths_scheduled(self, small_tree):
        _, paths, _ = small_tree
        schedule = ProbeScheduler().schedule_round(paths, seed=2)
        assert sorted(m.path_index for m in schedule.measurements) == list(
            range(len(paths))
        )

    def test_round_duration_grows_with_load(self, small_tree):
        _, paths, _ = small_tree
        fast = ProbeScheduler(rate_cap_bytes_per_s=1e9)
        slow = ProbeScheduler(rate_cap_bytes_per_s=8000)
        assert (
            slow.schedule_round(paths, seed=3).round_duration_s
            > fast.schedule_round(paths, seed=3).round_duration_s
        )

    def test_order_randomised(self, small_tree):
        _, paths, _ = small_tree
        a = ProbeScheduler().schedule_round(paths, seed=4)
        b = ProbeScheduler().schedule_round(paths, seed=5)
        order_a = [m.path_index for m in a.measurements]
        order_b = [m.path_index for m in b.measurements]
        assert order_a != order_b

    def test_probe_size_matches_paper(self):
        assert PROBE_SIZE_BYTES == 40  # 20 IP + 8 UDP + 12 payload


class TestSplit:
    def test_halves_cover_everything(self):
        split = split_paths(101, seed=0)
        rows = sorted(split.inference_rows + split.validation_rows)
        assert rows == list(range(101))

    def test_roughly_equal_halves(self):
        split = split_paths(100, seed=1)
        assert abs(len(split.inference_rows) - len(split.validation_rows)) <= 1

    def test_custom_fraction(self):
        split = split_paths(100, seed=2, validation_fraction=0.25)
        assert len(split.validation_rows) == 25

    def test_deterministic(self):
        assert split_paths(50, seed=3) == split_paths(50, seed=3)

    def test_too_few_paths(self):
        with pytest.raises(ValueError):
            split_paths(1)


class TestRestrictCampaign:
    def test_restriction_slices_measurements(self, small_tree, tree_campaign):
        _, paths, routing = small_tree
        split = split_paths(len(paths), seed=4)
        sub_campaign, sub_paths, sub_routing = restrict_campaign(
            tree_campaign, paths, split.inference_rows
        )
        assert len(sub_paths) == len(split.inference_rows)
        assert sub_routing.num_paths == len(sub_paths)
        for snap, sub in zip(tree_campaign.snapshots, sub_campaign.snapshots):
            expected = snap.path_transmission[list(split.inference_rows)]
            assert np.array_equal(sub.path_transmission, expected)

    def test_restriction_rereduces_routing(self, small_tree, tree_campaign):
        _, paths, routing = small_tree
        split = split_paths(len(paths), seed=5)
        _, _, sub_routing = restrict_campaign(
            tree_campaign, paths, split.inference_rows
        )
        # Fewer paths cover fewer links (or at most the same).
        assert sub_routing.num_links <= routing.num_links

    def test_empty_subset_rejected(self, small_tree, tree_campaign):
        _, paths, _ = small_tree
        with pytest.raises(ValueError):
            restrict_campaign(tree_campaign, paths, [])
