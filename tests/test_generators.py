"""Tests for the topology generators."""

import pytest

from repro.topology.generators import (
    barabasi_albert,
    dimes_like,
    hierarchical_bottom_up,
    hierarchical_top_down,
    planetlab_like,
    random_tree,
    select_end_hosts,
    waxman,
)
from repro.topology.graph import build_paths

ALL_MESH = [
    lambda seed: waxman(num_nodes=120, num_end_hosts=12, seed=seed),
    lambda seed: barabasi_albert(num_nodes=120, num_end_hosts=12, seed=seed),
    lambda seed: hierarchical_top_down(
        num_ases=6, routers_per_as=15, num_end_hosts=12, seed=seed
    ),
    lambda seed: hierarchical_bottom_up(
        num_nodes=120, num_end_hosts=12, seed=seed
    ),
    lambda seed: planetlab_like(num_sites=8, seed=seed),
    lambda seed: dimes_like(num_ases=25, num_hosts=12, seed=seed),
]


class TestRandomTree:
    def test_node_count_exact(self):
        for n in (10, 57, 300):
            topo = random_tree(num_nodes=n, seed=1)
            assert topo.network.num_nodes == n
            assert topo.network.num_links == n - 1

    def test_branching_bounds(self):
        topo = random_tree(num_nodes=400, max_branching=10, seed=2)
        net = topo.network
        internal = [v for v in net.nodes() if net.out_degree(v) > 0]
        fanouts = [net.out_degree(v) for v in internal]
        assert min(fanouts) >= 2  # no alias chains
        assert max(fanouts) <= 11  # max_branching, +1 straggler allowance

    def test_destinations_are_leaves(self):
        topo = random_tree(num_nodes=100, seed=3)
        assert all(topo.network.out_degree(d) == 0 for d in topo.destinations)
        assert topo.beacons == [0]

    def test_deterministic_with_seed(self):
        a = random_tree(num_nodes=80, seed=5)
        b = random_tree(num_nodes=80, seed=5)
        assert [link.endpoints() for link in a.network.links] == [
            link.endpoints() for link in b.network.links
        ]

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            random_tree(num_nodes=2)

    def test_all_leaves_reachable(self):
        topo = random_tree(num_nodes=150, seed=6)
        paths = build_paths(topo.network, topo.beacons, topo.destinations)
        assert len(paths) == len(topo.destinations)


class TestMeshGenerators:
    @pytest.mark.parametrize("factory", ALL_MESH)
    def test_all_hosts_mutually_reachable(self, factory):
        topo = factory(11)
        paths = build_paths(topo.network, topo.beacons, topo.destinations)
        expected = len(topo.beacons) * (len(topo.destinations) - 1)
        assert len(paths) == expected

    @pytest.mark.parametrize("factory", ALL_MESH)
    def test_deterministic_with_seed(self, factory):
        a, b = factory(21), factory(21)
        assert [link.endpoints() for link in a.network.links] == [
            link.endpoints() for link in b.network.links
        ]
        assert a.beacons == b.beacons

    @pytest.mark.parametrize("factory", ALL_MESH)
    def test_different_seeds_differ(self, factory):
        a, b = factory(1), factory(2)
        ea = [link.endpoints() for link in a.network.links]
        eb = [link.endpoints() for link in b.network.links]
        assert ea != eb

    def test_waxman_sparse(self):
        topo = waxman(num_nodes=200, links_per_node=2, num_end_hosts=10, seed=4)
        # Grown model: ~2 undirected edges per node -> ~4 directed per node.
        assert topo.network.num_links < 200 * 6

    def test_barabasi_albert_has_hubs(self):
        topo = barabasi_albert(num_nodes=300, num_end_hosts=10, seed=4)
        degrees = sorted(
            topo.network.degree(v) for v in topo.network.nodes()
        )
        assert degrees[-1] > 5 * degrees[len(degrees) // 2]

    def test_hierarchical_as_annotations(self):
        topo = hierarchical_top_down(
            num_ases=5, routers_per_as=10, num_end_hosts=8, seed=9
        )
        assert set(topo.as_of_node.values()) == set(range(5))
        assert len(topo.as_of_node) == topo.network.num_nodes

    def test_bottom_up_as_from_clustering(self):
        topo = hierarchical_bottom_up(
            num_nodes=100, num_ases=4, num_end_hosts=8, seed=9
        )
        assert len(set(topo.as_of_node.values())) <= 4

    def test_planetlab_sites_have_own_as(self):
        topo = planetlab_like(num_sites=6, seed=1)
        host_ases = {topo.as_of_node[h] for h in topo.beacons}
        assert len(host_ases) == 6  # one AS per site
        assert 0 not in host_ases  # backbone AS is separate

    def test_dimes_hosts_in_stub_ases(self):
        topo = dimes_like(num_ases=30, num_hosts=10, seed=2)
        assert len(topo.beacons) == 10
        assert topo.as_of_node  # annotated


class TestSelectEndHosts:
    def test_picks_lowest_degree(self):
        topo = barabasi_albert(num_nodes=100, num_end_hosts=5, seed=3)
        hosts = select_end_hosts(topo.network, 5)
        host_max = max(topo.network.degree(h) for h in hosts)
        others = [
            topo.network.degree(v)
            for v in topo.network.nodes()
            if v not in hosts
        ]
        assert host_max <= min(others)

    def test_too_many_requested(self):
        topo = random_tree(num_nodes=10, seed=1)
        with pytest.raises(ValueError):
            select_end_hosts(topo.network, 100)
