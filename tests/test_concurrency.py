"""Thread-safety regressions for module-level shared state.

The ``thread`` execution backend runs trials concurrently *inside one
process*, so the kernel-tier switch, the forest-plan LRU and the
estimator/backend registries are shared state.  Each test hammers one
of those seams from many threads and asserts the invariant the lock
exists to protect; before the locks landed these produced wrong modules
(tier races), drifting byte counters (plan LRU) and lost registrations
(registry check-then-set races).

Races are probabilistic: these tests cannot prove absence, but they
fail loudly (and did, pre-lock) when the guarded sections regress.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.api import registry
from repro.core import engine as engine_module
from repro.core import kernels
from repro.core.engine import (
    InferenceEngine,
    infer_many,
    invalidate_forest_plans,
    set_forest_plan_budget,
)
from repro.runner.backends import (
    SerialBackend,
    available_backends,
    register_backend,
    unregister_backend,
)

WORKERS = 8


def run_concurrently(tasks):
    """Run thunks in a pool; re-raise the first worker exception."""
    with ThreadPoolExecutor(max_workers=WORKERS) as pool:
        futures = [pool.submit(task) for task in tasks]
        for future in futures:
            future.result()


class TestKernelTierRaces:
    def test_tier_flip_never_hands_out_a_mismatched_backend(self):
        """get_kernels() under a racing set_kernel_tier() stays coherent."""
        valid = {
            f"repro.core.kernels.{tier}_backend"
            for tier in ("numpy", "numba")
        }
        barrier = threading.Barrier(WORKERS)

        def flipper():
            barrier.wait()
            for _ in range(200):
                kernels.set_kernel_tier("numpy")
                kernels.set_kernel_tier(None)

        def reader():
            barrier.wait()
            for _ in range(200):
                module = kernels.get_kernels()
                assert module.__name__ in valid
                assert kernels.current_tier() in ("numpy", "numba")

        try:
            run_concurrently([flipper] * (WORKERS // 2) + [reader] * (WORKERS // 2))
        finally:
            kernels.set_kernel_tier(None)

    def test_use_kernel_tier_restores_after_concurrent_blocks(self):
        barrier = threading.Barrier(WORKERS)

        def pin():
            barrier.wait()
            for _ in range(100):
                with kernels.use_kernel_tier("numpy") as tier:
                    assert tier == "numpy"
                    assert kernels.get_kernels().__name__.endswith(
                        "numpy_backend"
                    )

        try:
            run_concurrently([pin] * WORKERS)
        finally:
            kernels.set_kernel_tier(None)
        assert kernels.current_tier() in kernels.available_tiers()


class TestRegistryRaces:
    def test_estimator_registry_register_unregister_cycles(self):
        names = [f"_race_est_{i}" for i in range(WORKERS)]
        barrier = threading.Barrier(WORKERS)

        def cycle(name):
            barrier.wait()
            for _ in range(200):
                registry.register(name, object)
                assert name in registry.available()
                registry.unregister(name)

        try:
            run_concurrently([lambda n=n: cycle(n) for n in names])
        finally:
            for name in names:
                registry.unregister(name)
        assert not set(names) & set(registry.available())

    def test_backend_registry_register_unregister_cycles(self):
        names = [f"_race_backend_{i}" for i in range(WORKERS)]
        builtin = set(available_backends())
        barrier = threading.Barrier(WORKERS)

        def cycle(name):
            barrier.wait()
            for _ in range(200):
                register_backend(name, SerialBackend)
                assert name in available_backends()
                unregister_backend(name)

        try:
            run_concurrently([lambda n=n: cycle(n) for n in names])
        finally:
            for name in names:
                unregister_backend(name)
        assert set(available_backends()) == builtin

    def test_duplicate_registration_still_raises_under_contention(self):
        name = "_race_dup"
        registry.register(name, object)
        errors = []
        barrier = threading.Barrier(WORKERS)

        def reregister():
            barrier.wait()
            try:
                registry.register(name, object)
            except ValueError as error:
                errors.append(error)

        try:
            run_concurrently([reregister] * WORKERS)
        finally:
            registry.unregister(name)
        assert len(errors) == WORKERS


class TestForestPlanRaces:
    @pytest.fixture(scope="class")
    def forest_runs(self):
        """Three small trees — enough for the packed plan cache."""
        from repro import (
            ProberConfig,
            ProbingSimulator,
            RoutingMatrix,
            build_paths,
            random_tree,
        )

        runs = []
        for i in range(3):
            topo = random_tree(num_nodes=14 + 2 * i, seed=900 + i)
            paths = build_paths(topo.network, topo.beacons, topo.destinations)
            routing = RoutingMatrix.from_paths(paths)
            simulator = ProbingSimulator(
                paths,
                topo.network.num_links,
                config=ProberConfig(
                    probes_per_snapshot=120,
                    congestion_probability=0.15,
                ),
            )
            campaign = simulator.run_campaign(4, routing, seed=950 + i)
            training, target = campaign.split_training_target()
            engine = InferenceEngine(routing)
            runs.append((engine, target, engine.learn_variances(training)))
        return runs

    def test_infer_many_races_invalidation_without_corruption(self, forest_runs):
        """Packed inference stays byte-identical while other threads
        clear the plan LRU and flip its byte budget, and the LRU's byte
        counter matches its contents afterwards."""
        reference = [r.transmission_rates for r in infer_many(forest_runs, mode="loop")]
        barrier = threading.Barrier(WORKERS)

        def infer():
            barrier.wait()
            for _ in range(15):
                results = infer_many(forest_runs, mode="packed")
                for got, expected in zip(results, reference):
                    assert np.array_equal(got.transmission_rates, expected)

        def churn():
            barrier.wait()
            for step in range(60):
                invalidate_forest_plans()
                set_forest_plan_budget(1 if step % 2 else None)

        try:
            run_concurrently([infer] * (WORKERS - 2) + [churn] * 2)
        finally:
            set_forest_plan_budget(None)
            invalidate_forest_plans()

    def test_plan_byte_counter_matches_cache_contents(self, forest_runs):
        barrier = threading.Barrier(WORKERS)

        def infer():
            barrier.wait()
            for _ in range(10):
                infer_many(forest_runs, mode="packed")
                invalidate_forest_plans()

        try:
            run_concurrently([infer] * WORKERS)
        finally:
            set_forest_plan_budget(None)
        with engine_module._FOREST_PLAN_LOCK:
            expected = sum(
                plan.nbytes for plan in engine_module._forest_plans.values()
            )
            assert engine_module._forest_plan_bytes == expected
        invalidate_forest_plans()
