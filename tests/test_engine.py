"""Tests for the factorization-reusing inference engine."""

import numpy as np
import pytest
from scipy import sparse

from repro.core.covariance import CovarianceSummary
from repro.core.engine import (
    FactorizationCache,
    InferenceEngine,
    ReductionCache,
    infer_many,
)
from repro.core.lia import LossInferenceAlgorithm
from repro.core.reduction import reduce_to_full_rank, solve_reduced_system
from repro.core.variance import VarianceEstimate


@pytest.fixture(scope="module")
def trained(small_tree, tree_campaign):
    _, _, routing = small_tree
    lia = LossInferenceAlgorithm(routing)
    training, target = tree_campaign.split_training_target()
    estimate = lia.learn_variances(training)
    return routing, lia, training, target, estimate


class TestFactorizationCache:
    def test_block_and_factorization(self):
        rng = np.random.default_rng(0)
        R = (rng.random(size=(20, 10)) < 0.4).astype(np.float64)
        cache = FactorizationCache(R)
        kept = np.array([1, 4, 7])
        assert np.array_equal(cache.block(kept), R[:, kept])
        factorization = cache.factorization(kept)
        assert np.allclose(factorization.q @ factorization.r, R[:, kept], atol=1e-10)

    def test_hit_and_miss_accounting(self):
        R = np.eye(6)
        cache = FactorizationCache(sparse.csr_matrix(R))
        kept = np.array([0, 2])
        first = cache.factorization(kept)
        second = cache.factorization(np.array([0, 2]))
        assert first is second
        assert cache.hits == 1 and cache.misses == 1

    def test_lru_eviction(self):
        R = np.eye(8)
        cache = FactorizationCache(R, max_entries=2)
        a = cache.factorization(np.array([0]))
        cache.factorization(np.array([1]))
        cache.factorization(np.array([2]))  # evicts [0]
        assert len(cache) == 2
        again = cache.factorization(np.array([0]))
        assert again is not a

    def test_rejects_bad_max_entries(self):
        with pytest.raises(ValueError):
            FactorizationCache(np.eye(2), max_entries=0)


class TestFactorizationDowndate:
    """Shrinking kept sets reuse the cached QR via Givens downdates."""

    @pytest.fixture()
    def matrix(self):
        rng = np.random.default_rng(3)
        return rng.random(size=(24, 12)) + np.vstack(
            [np.eye(12), np.zeros((12, 12))]
        )

    def test_subset_request_downdates(self, matrix):
        cache = FactorizationCache(matrix, downdate_limit=2)
        full = np.arange(8)
        cache.factorization(full)
        shrunk = np.array([0, 1, 2, 4, 5, 7])  # drops columns 3 and 6
        downdated = cache.factorization(shrunk)
        assert cache.downdates == 1
        assert cache.misses == 1  # only the initial full factorization
        assert downdated.columns == tuple(int(c) for c in shrunk)

        fresh = FactorizationCache(matrix).factorization(shrunk)
        rhs = np.linspace(-1.0, 1.0, matrix.shape[0])
        assert np.allclose(downdated.solve(rhs), fresh.solve(rhs), atol=1e-10)
        assert np.allclose(
            downdated.q @ downdated.r, matrix[:, shrunk], atol=1e-10
        )

    def test_shrink_beyond_limit_refactorizes(self, matrix):
        cache = FactorizationCache(matrix, downdate_limit=2)
        cache.factorization(np.arange(8))
        cache.factorization(np.array([0, 2, 4, 6, 7]))  # 3 columns removed
        assert cache.downdates == 0
        assert cache.misses == 2

    def test_growing_set_refactorizes(self, matrix):
        cache = FactorizationCache(matrix, downdate_limit=2)
        cache.factorization(np.array([0, 1, 2]))
        cache.factorization(np.array([0, 1, 2, 3]))
        assert cache.downdates == 0
        assert cache.misses == 2

    def test_downdate_is_off_by_default(self, matrix):
        """Batch pipelines stay bit-identical: only opted-in consumers
        (the monitor) downdate."""
        cache = FactorizationCache(matrix)
        cache.factorization(np.arange(8))
        cache.factorization(np.arange(7))
        assert cache.downdates == 0
        assert cache.misses == 2

    def test_downdated_entry_is_cached(self, matrix):
        cache = FactorizationCache(matrix, downdate_limit=2)
        cache.factorization(np.arange(6))
        shrunk = np.arange(5)
        first = cache.factorization(shrunk)
        second = cache.factorization(shrunk)
        assert first is second
        assert cache.downdates == 1 and cache.hits == 1

    def test_engine_downdates_on_shrinking_kept_set(self, small_tree):
        """A refresh that exonerates ≤2 columns rides the downdate path."""
        from repro.core.covariance import CovarianceSummary
        from repro.core.variance import VarianceEstimate
        from repro.probing.snapshot import Snapshot

        _, _, routing = small_tree
        engine = InferenceEngine(routing)
        # Opt in the way OnlineLossMonitor does.
        engine.factorization_cache.downdate_limit = 2

        def estimate_with(columns):
            variances = np.zeros(routing.num_links)
            variances[list(columns)] = 1e-2
            return VarianceEstimate(
                variances=variances,
                method="wls",
                covariance_summary=CovarianceSummary(2, 1, 0),
                residual_norm=0.0,
            )

        snapshot = Snapshot(
            path_transmission=np.full(routing.num_paths, 0.98),
            num_probes=1000,
        )
        wide = engine.infer(snapshot, estimate_with([1, 3, 5, 7]))
        assert len(wide.reduction.kept_columns) == 4
        narrow = engine.infer(snapshot, estimate_with([1, 5, 7]))
        assert engine.factorization_cache.downdates == 1
        assert engine.factorization_cache.misses == 1

        # The downdated solve equals a cold engine's exact factorization.
        cold = InferenceEngine(routing).infer(snapshot, estimate_with([1, 5, 7]))
        assert np.allclose(
            narrow.transmission_rates, cold.transmission_rates, atol=1e-10
        )


class TestFactorizationUpdate:
    """Growing kept sets reuse the cached QR via CGS2 column adds."""

    @pytest.fixture()
    def matrix(self):
        rng = np.random.default_rng(3)
        return rng.random(size=(24, 12)) + np.vstack(
            [np.eye(12), np.zeros((12, 12))]
        )

    def test_superset_request_updates(self, matrix):
        cache = FactorizationCache(matrix, update_limit=2)
        cache.factorization(np.array([0, 1, 2, 4, 5, 7]))
        grown = np.arange(8)  # adds columns 3 and 6
        updated = cache.factorization(grown)
        assert cache.updates == 1
        assert cache.misses == 1  # only the initial subset factorization
        assert updated.columns == tuple(range(8))

        fresh = FactorizationCache(matrix).factorization(grown)
        rhs = np.linspace(-1.0, 1.0, matrix.shape[0])
        assert np.allclose(updated.solve(rhs), fresh.solve(rhs), atol=1e-10)
        assert np.allclose(
            updated.q @ updated.r, matrix[:, grown], atol=1e-10
        )

    def test_grow_beyond_limit_refactorizes(self, matrix):
        cache = FactorizationCache(matrix, update_limit=2)
        cache.factorization(np.arange(5))
        cache.factorization(np.arange(8))  # 3 columns added
        assert cache.updates == 0
        assert cache.misses == 2

    def test_update_is_off_by_default(self, matrix):
        """Batch pipelines stay bit-identical: only opted-in consumers
        (the monitor) ride the column-add path."""
        cache = FactorizationCache(matrix)
        cache.factorization(np.arange(5))
        cache.factorization(np.arange(6))
        assert cache.updates == 0
        assert cache.misses == 2

    def test_dependent_column_falls_back_to_fresh_qr(self):
        rng = np.random.default_rng(5)
        A = rng.random(size=(10, 6))
        A[:, 4] = A[:, 0] + A[:, 1]
        cache = FactorizationCache(A, update_limit=2)
        cache.factorization(np.array([0, 1, 2]))
        grown = cache.factorization(np.array([0, 1, 2, 4]))
        # The CGS2 offer rejects the dependent column; the cache falls
        # back to a fresh (rank-deficient) factorization instead.
        assert cache.updates == 0
        assert cache.misses == 2
        assert not grown.full_rank

    def test_updated_entry_is_cached(self, matrix):
        cache = FactorizationCache(matrix, update_limit=2)
        cache.factorization(np.arange(5))
        grown = np.arange(6)
        first = cache.factorization(grown)
        second = cache.factorization(grown)
        assert first is second
        assert cache.updates == 1 and cache.hits == 1

    def test_negative_limits_rejected(self):
        with pytest.raises(ValueError):
            FactorizationCache(np.eye(2), update_limit=-1)
        with pytest.raises(ValueError):
            FactorizationCache(np.eye(2), downdate_limit=-1)

    def test_engine_updates_on_growing_kept_set(self, small_tree):
        """A refresh that implicates ≤2 new columns rides the add path."""
        from repro.probing.snapshot import Snapshot

        _, _, routing = small_tree
        engine = InferenceEngine(routing, update_limit=2)

        def estimate_with(columns):
            variances = np.zeros(routing.num_links)
            variances[list(columns)] = 1e-2
            return VarianceEstimate(
                variances=variances,
                method="wls",
                covariance_summary=CovarianceSummary(2, 1, 0),
                residual_norm=0.0,
            )

        snapshot = Snapshot(
            path_transmission=np.full(routing.num_paths, 0.98),
            num_probes=1000,
        )
        engine.infer(snapshot, estimate_with([1, 5, 7]))
        wide = engine.infer(snapshot, estimate_with([1, 3, 5, 7]))
        assert engine.factorization_cache.updates == 1
        assert engine.factorization_cache.misses == 1

        cold = InferenceEngine(routing).infer(
            snapshot, estimate_with([1, 3, 5, 7])
        )
        assert np.allclose(
            wide.transmission_rates, cold.transmission_rates, atol=1e-10
        )


class TestCacheBudgets:
    """max_bytes bounds resident arrays with byte-accounted LRU eviction."""

    @pytest.fixture()
    def matrix(self):
        rng = np.random.default_rng(3)
        return rng.random(size=(24, 12)) + np.vstack(
            [np.eye(12), np.zeros((12, 12))]
        )

    @staticmethod
    def entry_bytes(factorization):
        return factorization.q.nbytes + factorization.r.nbytes

    def test_byte_budget_evicts_lru(self, matrix):
        probe = FactorizationCache(matrix).factorization(np.arange(6))
        cache = FactorizationCache(
            matrix, max_bytes=self.entry_bytes(probe) + 64
        )
        first = cache.factorization(np.arange(6))
        cache.factorization(np.arange(6, 12))  # same size: evicts the first
        assert cache.evictions == 1
        assert len(cache) == 1
        assert cache.resident_bytes <= cache.max_bytes
        again = cache.factorization(np.arange(6))
        assert again is not first

    def test_single_entry_may_exceed_budget(self, matrix):
        cache = FactorizationCache(matrix, max_bytes=1)
        cache.factorization(np.arange(6))
        # The eviction loop never empties the cache entirely.
        assert len(cache) == 1
        assert cache.evictions == 0
        assert cache.resident_bytes > cache.max_bytes

    def test_resident_bytes_tracks_evictions(self, matrix):
        cache = FactorizationCache(matrix, max_entries=2)
        sizes = []
        for kept in (np.arange(4), np.arange(4, 10), np.arange(10, 12)):
            sizes.append(self.entry_bytes(cache.factorization(kept)))
        assert cache.evictions == 1
        assert cache.resident_bytes == sum(sizes[1:])

    def test_max_bytes_validated(self):
        with pytest.raises(ValueError):
            FactorizationCache(np.eye(2), max_bytes=0)
        with pytest.raises(ValueError):
            ReductionCache(np.eye(2), max_bytes=0)

    def test_cache_info_snapshot(self, matrix):
        cache = FactorizationCache(matrix, downdate_limit=2, update_limit=2)
        cache.factorization(np.arange(6))
        cache.factorization(np.arange(6))  # hit
        cache.factorization(np.arange(5))  # downdate
        cache.factorization(np.arange(7))  # update from the 6-column entry
        info = cache.cache_info()
        assert info.as_dict() == {
            "hits": 1,
            "misses": 1,
            "updates": 1,
            "downdates": 1,
            "evictions": 0,
            "entries": 3,
            "resident_bytes": cache.resident_bytes,
        }

    def test_engine_cache_info_keys(self, small_tree):
        _, _, routing = small_tree
        info = InferenceEngine(routing).cache_info()
        assert set(info) == {"factorization", "reduction"}
        assert all(value.entries == 0 for value in info.values())


class TestReductionReuse:
    """Threshold-strategy reuse across variance vectors (opt-in)."""

    CUTOFF = 1e-4

    @pytest.fixture()
    def matrix(self):
        rng = np.random.default_rng(3)
        return rng.random(size=(24, 12)) + np.vstack(
            [np.eye(12), np.zeros((12, 12))]
        )

    @staticmethod
    def variances_for(columns, num_links=12, scale=1.0):
        variances = np.zeros(num_links)
        for i, column in enumerate(columns):
            variances[column] = scale * 0.01 * (1 + i)
        return variances

    def reduce(self, cache, columns, scale=1.0):
        return cache.reduce(
            self.variances_for(columns, scale=scale),
            "threshold",
            variance_cutoff=self.CUTOFF,
        )

    def test_exact_vector_hits(self, matrix):
        cache = ReductionCache(matrix, reuse_limit=2)
        first = self.reduce(cache, [0, 3, 5])
        second = self.reduce(cache, [0, 3, 5])
        assert first is second
        assert cache.hits == 1 and cache.misses == 1

    def test_identical_candidates_skip_the_sweep(self, matrix):
        """Same above-cutoff set under different variance values."""
        cache = ReductionCache(matrix, reuse_limit=2)
        first = self.reduce(cache, [0, 3, 5])
        second = self.reduce(cache, [0, 3, 5], scale=2.0)
        assert cache.updates == 1 and cache.misses == 1
        assert np.array_equal(first.kept_columns, second.kept_columns)

    def test_shrunk_candidates_skip_the_sweep(self, matrix):
        cache = ReductionCache(matrix, reuse_limit=2)
        self.reduce(cache, [0, 3, 5, 8])
        shrunk = self.reduce(cache, [0, 5, 8])
        assert cache.updates == 1 and cache.misses == 1
        assert list(shrunk.kept_columns) == [0, 5, 8]

    def test_grown_candidates_offer_only_new_columns(self, matrix):
        cache = ReductionCache(matrix, reuse_limit=2)
        self.reduce(cache, [0, 3, 5])
        grown = self.reduce(cache, [0, 3, 5, 8, 9])
        assert cache.updates == 1 and cache.misses == 1
        assert list(grown.kept_columns) == [0, 3, 5, 8, 9]
        # Decision-identical to the cold sweep.
        cold = reduce_to_full_rank(
            matrix,
            self.variances_for([0, 3, 5, 8, 9]),
            strategy="threshold",
            variance_cutoff=self.CUTOFF,
        )
        assert np.array_equal(grown.kept_columns, cold.kept_columns)

    def test_grow_beyond_limit_sweeps(self, matrix):
        cache = ReductionCache(matrix, reuse_limit=2)
        self.reduce(cache, [0, 3])
        self.reduce(cache, [0, 3, 5, 8, 9])  # 3 new candidates
        assert cache.updates == 0 and cache.misses == 2

    def test_reuse_is_off_by_default(self, matrix):
        cache = ReductionCache(matrix)
        self.reduce(cache, [0, 3, 5])
        self.reduce(cache, [0, 3, 5], scale=2.0)
        assert cache.updates == 0 and cache.misses == 2

    def test_dependent_growth_falls_back_to_the_sweep(self, matrix):
        dependent = np.array(matrix)
        dependent[:, 11] = dependent[:, 0] + dependent[:, 3]
        cache = ReductionCache(dependent, reuse_limit=2)
        self.reduce(cache, [0, 3])
        grown = self.reduce(cache, [0, 3, 11])
        # The basis offer rejects column 11, so the cold sweep runs; its
        # descending-variance scan keeps {3, 11} and rejects 0 instead.
        assert cache.updates == 0 and cache.misses == 2
        cold = reduce_to_full_rank(
            dependent,
            self.variances_for([0, 3, 11]),
            strategy="threshold",
            variance_cutoff=self.CUTOFF,
        )
        assert np.array_equal(grown.kept_columns, cold.kept_columns)
        assert list(grown.kept_columns) == [3, 11]

    def test_negative_reuse_limit_rejected(self):
        with pytest.raises(ValueError):
            ReductionCache(np.eye(2), reuse_limit=-1)


class TestBatchByteIdentity:
    """Knob-free engines never touch the incremental paths.

    Batch pipelines construct their engines with the defaults, so their
    payloads stay seed-for-seed byte-identical to the pre-incremental
    code: the new paths are opt-in and only the monitor opts in.
    """

    def test_batch_inference_is_byte_identical_to_cold_engines(
        self, trained
    ):
        routing, lia, training, target, estimate = trained
        snapshots = list(training.snapshots[-3:]) + [target]
        warm_lia = LossInferenceAlgorithm(routing)
        results = [warm_lia.infer(s, estimate) for s in snapshots]
        info = warm_lia.engine.cache_info()
        assert info["factorization"].updates == 0
        assert info["factorization"].downdates == 0
        assert info["reduction"].updates == 0
        for snapshot, warm in zip(snapshots, results):
            cold = LossInferenceAlgorithm(routing).infer(snapshot, estimate)
            assert np.array_equal(warm.loss_rates, cold.loss_rates)
            assert np.array_equal(
                warm.transmission_rates, cold.transmission_rates
            )


class TestEngineInference:
    def test_matches_seed_pipeline(self, trained):
        """Engine inference == seed reduce + lstsq solve, to tight tolerance."""
        routing, lia, _, target, estimate = trained
        result = lia.infer(target, estimate)
        cutoff = (
            lia.cutoff_scale * lia.congestion_threshold / target.num_probes
        )
        reduction = reduce_to_full_rank(
            routing.matrix.astype(np.float64),
            estimate.variances,
            strategy="threshold",
            variance_cutoff=cutoff,
        )
        assert np.array_equal(
            result.reduction.kept_columns, reduction.kept_columns
        )
        x = solve_reduced_system(
            routing.matrix.astype(np.float64),
            target.path_log_rates(),
            reduction,
            solver="lstsq",
        )
        assert np.allclose(result.transmission_rates, np.exp(x), atol=1e-9)

    def test_reduction_memoized_per_estimate(self, trained):
        _, lia, _, target, estimate = trained
        first = lia.infer(target, estimate)
        second = lia.infer(target, estimate)
        assert first.reduction is second.reduction

    def test_factorization_reused_across_snapshots(self, small_tree, tree_campaign):
        _, _, routing = small_tree
        lia = LossInferenceAlgorithm(routing)
        training, _ = tree_campaign.split_training_target()
        estimate = lia.learn_variances(training)
        cache = lia.engine.factorization_cache
        for snapshot in tree_campaign.snapshots[-5:]:
            lia.infer(snapshot, estimate)
        assert cache.misses == 1
        assert cache.hits == 4

    def test_estimate_shape_validated(self, trained):
        _, lia, _, target, _ = trained
        from repro.core.variance import VarianceEstimate
        from repro.core.covariance import CovarianceSummary

        bogus = VarianceEstimate(
            variances=np.ones(target.num_paths + 123),
            method="wls",
            covariance_summary=CovarianceSummary(2, 1, 0),
            residual_norm=0.0,
        )
        with pytest.raises(ValueError, match="does not match"):
            lia.infer(target, bogus)

    def test_pairs_setter_validates(self, trained, small_mesh):
        routing, lia, _, _, _ = trained
        _, _, other_routing = small_mesh
        other = LossInferenceAlgorithm(other_routing)
        with pytest.raises(ValueError, match="do not match"):
            lia.engine.pairs = other.pairs
        lia.engine.pairs = lia.pairs  # same structure is accepted


class TestInferBatch:
    def test_matches_per_snapshot_infer(self, small_tree, tree_campaign):
        _, _, routing = small_tree
        lia = LossInferenceAlgorithm(routing)
        training, _ = tree_campaign.split_training_target()
        estimate = lia.learn_variances(training)
        tail = tree_campaign.snapshots[-6:]
        batched = lia.infer_batch(tail, estimate)
        assert len(batched) == len(tail)
        for snapshot, result in zip(tail, batched):
            single = lia.infer(snapshot, estimate)
            assert np.allclose(
                result.transmission_rates,
                single.transmission_rates,
                atol=1e-12,
            )
            assert np.array_equal(
                result.reduction.kept_columns,
                single.reduction.kept_columns,
            )

    def test_single_factorization_for_uniform_batch(self, small_tree, tree_campaign):
        _, _, routing = small_tree
        lia = LossInferenceAlgorithm(routing)
        training, _ = tree_campaign.split_training_target()
        estimate = lia.learn_variances(training)
        cache = lia.engine.factorization_cache
        lia.infer_batch(tree_campaign.snapshots[-8:], estimate)
        assert cache.misses == 1

    def test_empty_batch(self, trained):
        _, lia, _, _, estimate = trained
        assert lia.infer_batch([], estimate) == []

    def test_empty_kept_set_batch(self, small_tree, tree_campaign):
        """All-quiet variances keep nothing: rates are exactly 1."""
        _, _, routing = small_tree
        from repro.core.variance import VarianceEstimate
        from repro.core.covariance import CovarianceSummary

        engine = InferenceEngine(routing)
        quiet = VarianceEstimate(
            variances=np.zeros(routing.num_links),
            method="wls",
            covariance_summary=CovarianceSummary(2, 1, 0),
            residual_norm=0.0,
        )
        results = engine.infer_batch(tree_campaign.snapshots[-3:], quiet)
        for result in results:
            assert np.array_equal(
                result.transmission_rates, np.ones(routing.num_links)
            )

    def test_mixed_probe_counts_grouped(self, small_tree, tree_campaign):
        """Snapshots with different S get their own cutoff (and group)."""
        from dataclasses import replace

        _, _, routing = small_tree
        lia = LossInferenceAlgorithm(routing)
        training, target = tree_campaign.split_training_target()
        estimate = lia.learn_variances(training)
        halved = replace(target, num_probes=target.num_probes // 2)
        batched = lia.infer_batch([target, halved, target], estimate)
        singles = [lia.infer(s, estimate) for s in (target, halved, target)]
        for batch_result, single in zip(batched, singles):
            assert np.allclose(
                batch_result.transmission_rates,
                single.transmission_rates,
                atol=1e-12,
            )


class TestInferMany:
    """Block-diagonal batched inference across independent trees."""

    @pytest.fixture(scope="class")
    def forest_runs(self):
        """Five small trees with distinct sizes and probe counts."""
        from repro import (
            ProberConfig,
            ProbingSimulator,
            RoutingMatrix,
            build_paths,
            random_tree,
        )

        runs = []
        for i in range(5):
            topo = random_tree(num_nodes=25 + 3 * i, seed=300 + i)
            paths = build_paths(
                topo.network, topo.beacons, topo.destinations
            )
            routing = RoutingMatrix.from_paths(paths)
            simulator = ProbingSimulator(
                paths,
                topo.network.num_links,
                config=ProberConfig(
                    probes_per_snapshot=200 + 50 * i,
                    congestion_probability=0.15,
                ),
            )
            campaign = simulator.run_campaign(9, routing, seed=500 + i)
            training, target = campaign.split_training_target()
            engine = InferenceEngine(routing)
            runs.append((engine, target, engine.learn_variances(training)))
        return runs

    def test_packed_matches_loop_to_the_byte(self, forest_runs):
        loop = infer_many(forest_runs, mode="loop")
        packed = infer_many(forest_runs, mode="packed")
        assert len(loop) == len(packed) == len(forest_runs)
        for reference, batched in zip(loop, packed):
            assert np.array_equal(
                reference.transmission_rates, batched.transmission_rates
            )
            assert np.array_equal(
                reference.reduction.kept_columns,
                batched.reduction.kept_columns,
            )

    def test_auto_selects_packed(self, forest_runs):
        auto = infer_many(forest_runs)
        packed = infer_many(forest_runs, mode="packed")
        for a, p in zip(auto, packed):
            assert np.array_equal(a.transmission_rates, p.transmission_rates)

    def test_sparse_mode_matches_to_solver_precision(self, forest_runs):
        loop = infer_many(forest_runs, mode="loop")
        via_sparse = infer_many(forest_runs, mode="sparse")
        for reference, batched in zip(loop, via_sparse):
            assert np.allclose(
                reference.transmission_rates,
                batched.transmission_rates,
                rtol=1e-8,
                atol=1e-9,
            )

    def test_empty_runs(self):
        assert infer_many([]) == []
        assert infer_many([], mode="loop") == []

    def test_invalid_mode_raises(self, forest_runs):
        with pytest.raises(ValueError, match="unknown infer_many mode"):
            infer_many(forest_runs, mode="blocked")

    def test_empty_kept_set_tree(self, small_tree, tree_campaign):
        """A tree whose reduction keeps nothing still lands rate 1.0."""
        _, _, routing = small_tree
        engine = InferenceEngine(routing)
        quiet = VarianceEstimate(
            variances=np.zeros(routing.num_links),
            method="wls",
            covariance_summary=CovarianceSummary(2, 1, 0),
            residual_norm=0.0,
        )
        target = tree_campaign.snapshots[-1]
        runs = [(engine, target, quiet)]
        for mode in ("packed", "sparse"):
            (result,) = infer_many(runs, mode=mode)
            assert np.array_equal(
                result.transmission_rates, np.ones(routing.num_links)
            )

    def test_plan_cache_hit_and_lru(self, forest_runs):
        from repro.core import engine as engine_module

        engine_module.invalidate_forest_plans()
        first = engine_module._forest_plan(forest_runs)
        assert len(engine_module._forest_plans) == 1
        assert engine_module._forest_plan(forest_runs) is first
        # Distinct sub-forests get distinct plans, bounded by the LRU.
        for size in range(1, 5):
            engine_module._forest_plan(forest_runs[:size])
        assert (
            len(engine_module._forest_plans)
            <= engine_module.FOREST_PLAN_LIMIT
        )
        engine_module.invalidate_forest_plans()
        assert len(engine_module._forest_plans) == 0

    def test_downdating_engines_bypass_plan_cache(self, forest_runs):
        from repro.core import engine as engine_module

        engine_module.invalidate_forest_plans()
        engine, target, estimate = forest_runs[0]
        engine._factorizations.downdate_limit = 2
        try:
            runs = [(engine, target, estimate)]
            engine_module._forest_plan(runs)
            assert len(engine_module._forest_plans) == 0
            loop = infer_many(runs, mode="loop")
            packed = infer_many(runs, mode="packed")
            assert np.array_equal(
                loop[0].transmission_rates, packed[0].transmission_rates
            )
        finally:
            engine._factorizations.downdate_limit = 0
            engine_module.invalidate_forest_plans()

    def test_staticmethod_and_lia_wrapper_delegate(self, forest_runs):
        from repro.core.lia import infer_many as lia_infer_many

        packed = infer_many(forest_runs, mode="packed")
        via_static = InferenceEngine.infer_many(forest_runs, mode="packed")
        for a, b in zip(packed, via_static):
            assert np.array_equal(a.transmission_rates, b.transmission_rates)
        wrapped = []
        for engine, target, estimate in forest_runs:
            algorithm = LossInferenceAlgorithm.__new__(LossInferenceAlgorithm)
            algorithm.engine = engine
            wrapped.append((algorithm, target, estimate))
        via_lia = lia_infer_many(wrapped, mode="packed")
        for a, b in zip(packed, via_lia):
            assert np.array_equal(a.transmission_rates, b.transmission_rates)

    def test_full_rank_property_is_cached(self):
        from repro.core.linalg import QRFactorization

        rng = np.random.default_rng(1)
        factorization = QRFactorization.factorize(rng.normal(size=(12, 5)))
        assert "full_rank" not in factorization.__dict__
        assert factorization.full_rank == factorization.is_full_rank()
        assert "full_rank" in factorization.__dict__
