"""The remote execution backend: framing, fault tolerance, identity.

Three layers of test double:

* raw ``socket.socketpair`` for the frame codec;
* in-thread :func:`run_worker` loops (plus hand-rolled saboteur sockets)
  against a :class:`RemoteCoordinator`, for protocol and re-queue paths;
* real ``repro worker`` subprocesses through ``ParallelRunner`` for the
  end-to-end contract — payload identity with ``serial``, traceback
  transport, shard-cache resume, and a worker killed mid-run.
"""

from __future__ import annotations

import os
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

import repro
from repro.runner import ParallelRunner, ShardExecutionError, TrialSpec
from repro.runner.backends import execute_shard
from repro.runner.cache import compute_code_version
from repro.runner.remote import (
    DEFAULT_PORT,
    MAX_FRAME_BYTES,
    PROTOCOL,
    _LENGTH,
    FrameError,
    RemoteBackend,
    RemoteCoordinator,
    parse_address,
    recv_frame,
    resolve_trial_fn,
    run_worker,
    send_frame,
    trial_fn_reference,
)

SRC_ROOT = str(Path(repro.__file__).resolve().parent.parent)
TESTS_DIR = str(Path(__file__).resolve().parent)


# -- module-level trial functions (workers import them by reference) -----------


def wire_trial(spec: TrialSpec) -> dict:
    return {"value": spec.seed * 3, "tag": spec.params.get("tag"), "index": spec.index}


def remote_fragile_trial(spec: TrialSpec) -> dict:
    if spec.index == 1:
        raise ValueError("remote boom in trial 1")
    return {"ok": spec.index}


def sleepy_trial(spec: TrialSpec) -> dict:
    time.sleep(spec.params["sleep"])
    return {"slept": spec.params["sleep"]}


def make_specs(n: int) -> list:
    return [
        TrialSpec("remote-unit", i, seed=i + 11, params={"tag": f"t{i % 2}"})
        for i in range(n)
    ]


def make_shards(specs) -> list:
    return [(i, [spec]) for i, spec in enumerate(specs)]


def worker_env() -> dict:
    """Environment for externally-spawned `repro worker` subprocesses."""
    path = os.pathsep.join(
        p for p in (SRC_ROOT, TESTS_DIR, os.environ.get("PYTHONPATH", "")) if p
    )
    return {**os.environ, "PYTHONPATH": path}


def free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def start_worker_thread(address: str, **kwargs):
    """Run :func:`run_worker` in-thread; returns (thread, result dict)."""
    outcome: dict = {}
    defaults = dict(
        retry_seconds=10.0, max_runs=1, heartbeat_interval=0.2,
        log=lambda line: None,
    )
    defaults.update(kwargs)

    def _run():
        outcome["exit"] = run_worker(address, **defaults)

    thread = threading.Thread(target=_run, daemon=True)
    thread.start()
    return thread, outcome


# -- framing -------------------------------------------------------------------


class TestFraming:
    def _pair(self):
        return socket.socketpair()

    def test_round_trip(self):
        a, b = self._pair()
        with a, b:
            send_frame(a, {"type": "hello", "blob": [1, 2, {"x": None}]})
            assert recv_frame(b) == {"type": "hello", "blob": [1, 2, {"x": None}]}

    def test_clean_close_is_none(self):
        a, b = self._pair()
        with b:
            a.close()
            assert recv_frame(b) is None

    def test_mid_prefix_close_raises(self):
        a, b = self._pair()
        with b:
            a.sendall(b"\x00\x00")  # half a length prefix
            a.close()
            with pytest.raises(FrameError, match="mid-length-prefix"):
                recv_frame(b)

    def test_truncated_body_raises(self):
        a, b = self._pair()
        with b:
            a.sendall(_LENGTH.pack(5000) + b"only this much")
            a.close()
            with pytest.raises(FrameError, match="mid-frame"):
                recv_frame(b)

    def test_oversized_announcement_raises(self):
        a, b = self._pair()
        with a, b:
            a.sendall(_LENGTH.pack(MAX_FRAME_BYTES + 1))
            with pytest.raises(FrameError, match="oversized"):
                recv_frame(b)

    def test_non_json_body_raises(self):
        a, b = self._pair()
        with a, b:
            body = b"definitely not json"
            a.sendall(_LENGTH.pack(len(body)) + body)
            with pytest.raises(FrameError, match="not valid JSON"):
                recv_frame(b)

    def test_untyped_message_raises(self):
        a, b = self._pair()
        with a, b:
            body = b'{"no_type": 1}'
            a.sendall(_LENGTH.pack(len(body)) + body)
            with pytest.raises(FrameError, match="typed message"):
                recv_frame(b)

    def test_send_refuses_oversized_frame(self):
        a, b = self._pair()
        with a, b:
            with pytest.raises(FrameError, match="refusing to send"):
                send_frame(a, {"type": "x", "pad": "y" * (MAX_FRAME_BYTES + 1)})


class TestReferences:
    def test_reference_round_trip(self):
        reference = trial_fn_reference(wire_trial)
        assert reference.endswith(":wire_trial")
        assert resolve_trial_fn(reference) is wire_trial

    def test_non_module_level_rejected(self):
        with pytest.raises(ValueError, match="module-level"):
            trial_fn_reference(lambda spec: spec)

        def nested(spec):
            return spec

        with pytest.raises(ValueError, match="module-level"):
            trial_fn_reference(nested)

    def test_parse_address(self):
        assert parse_address("10.0.0.7:9000") == ("10.0.0.7", 9000)
        assert parse_address("bastion") == ("bastion", DEFAULT_PORT)
        with pytest.raises(ValueError):
            parse_address("host:70000")

    def test_spec_wire_round_trip(self):
        spec = TrialSpec(
            "exp", 4, seed=None, params={"a": [1, 2]}, cacheable=False
        )
        clone = TrialSpec.from_wire(spec.to_wire())
        assert clone == spec
        assert clone.index == 4 and clone.cacheable is False


# -- coordinator protocol (in-thread workers) ----------------------------------


class TestCoordinator:
    def test_serve_collects_all_shards(self):
        specs = make_specs(4)
        shards = make_shards(specs)
        with RemoteCoordinator(expected_workers=1, connect_timeout=15.0) as coord:
            start_worker_thread(coord.address)
            outcomes = dict(coord.serve(wire_trial, shards))
        assert set(outcomes) == {0, 1, 2, 3}
        for index, (status, payloads) in outcomes.items():
            assert status == "ok"
            assert payloads == execute_shard(wire_trial, shards[index][1])
        assert coord.workers_lost == 0 and coord.requeued == []

    def test_trial_error_travels_as_traceback_text(self):
        shards = make_shards(make_specs(2))
        with RemoteCoordinator(expected_workers=1, connect_timeout=15.0) as coord:
            start_worker_thread(coord.address)
            outcomes = dict(coord.serve(remote_fragile_trial, shards))
        status, detail = outcomes[1]
        assert status == "error"
        assert "remote boom in trial 1" in detail
        assert "Traceback (most recent call last)" in detail

    def test_missing_fleet_fails_loud(self):
        with RemoteCoordinator(expected_workers=1, connect_timeout=0.5) as coord:
            with pytest.raises(RuntimeError, match="only 0 of 1 workers"):
                list(coord.serve(wire_trial, make_shards(make_specs(1))))

    def test_code_version_mismatch_rejects_worker(self):
        with RemoteCoordinator(
            expected_workers=1, connect_timeout=2.0, code_version="not-yours"
        ) as coord:
            thread, outcome = start_worker_thread(coord.address)
            with pytest.raises(RuntimeError, match="1 rejected"):
                list(coord.serve(wire_trial, make_shards(make_specs(1))))
        thread.join(timeout=10)
        assert outcome["exit"] == 2  # rejected, not retrying
        assert coord.workers_rejected == 1

    def test_heartbeat_keeps_slow_trials_alive(self):
        # The trial outlives worker_timeout; pings must keep the worker
        # from being declared dead mid-execution.
        specs = [TrialSpec("remote-unit", 0, seed=1, params={"sleep": 1.5})]
        with RemoteCoordinator(
            expected_workers=1, connect_timeout=15.0, worker_timeout=0.6
        ) as coord:
            start_worker_thread(coord.address, heartbeat_interval=0.15)
            outcomes = dict(coord.serve(sleepy_trial, make_shards(specs)))
        assert outcomes[0][0] == "ok"
        assert coord.workers_lost == 0

    def _saboteur(self, address: str, payload: bytes, holding: threading.Event):
        """Handshake, take one shard, emit *payload* instead of a result."""
        sock = socket.create_connection(parse_address(address), timeout=10.0)
        try:
            send_frame(sock, {
                "type": "hello", "protocol": PROTOCOL,
                "code_version": compute_code_version(), "worker": "saboteur",
            })
            assert recv_frame(sock)["type"] == "welcome"
            send_frame(sock, {"type": "ready"})
            assert recv_frame(sock)["type"] == "shard"
            holding.set()
            if payload:
                sock.sendall(payload)
        finally:
            sock.close()

    @pytest.mark.parametrize(
        "payload",
        [
            pytest.param(_LENGTH.pack(MAX_FRAME_BYTES + 1), id="oversized"),
            pytest.param(_LENGTH.pack(4096) + b"stub", id="truncated"),
            pytest.param(
                _LENGTH.pack(15) + b'{"type": "wat"}', id="unknown-type"
            ),
            pytest.param(b"", id="vanish"),
        ],
    )
    def test_corrupt_worker_requeues_shard(self, payload):
        # A worker that emits garbage (or nothing) after taking a shard
        # must cost a re-queue, never a hang or a lost shard.
        specs = make_specs(3)
        shards = make_shards(specs)
        holding = threading.Event()
        with RemoteCoordinator(
            expected_workers=1, connect_timeout=15.0, worker_timeout=10.0
        ) as coord:
            saboteur = threading.Thread(
                target=self._saboteur, args=(coord.address, payload, holding),
                daemon=True,
            )
            saboteur.start()

            def _relief():
                holding.wait(timeout=15.0)
                run_worker(
                    coord.address, retry_seconds=10.0, max_runs=1,
                    heartbeat_interval=0.2, log=lambda line: None,
                )

            threading.Thread(target=_relief, daemon=True).start()
            outcomes = dict(coord.serve(wire_trial, shards))
        assert set(outcomes) == {0, 1, 2}
        for index, (status, payloads) in outcomes.items():
            assert status == "ok"
            assert payloads == execute_shard(wire_trial, shards[index][1])
        assert coord.workers_lost == 1
        assert len(coord.requeued) == 1

    def test_silent_worker_times_out(self):
        # No EOF, no pings, shard in flight: the worker_timeout reaper is
        # the only thing standing between a hung machine and a stuck run.
        specs = make_specs(2)
        holding = threading.Event()
        release = threading.Event()

        def _hang(address):
            sock = socket.create_connection(parse_address(address), timeout=10.0)
            try:
                send_frame(sock, {
                    "type": "hello", "protocol": PROTOCOL,
                    "code_version": compute_code_version(), "worker": "hung",
                })
                assert recv_frame(sock)["type"] == "welcome"
                send_frame(sock, {"type": "ready"})
                assert recv_frame(sock)["type"] == "shard"
                holding.set()
                release.wait(timeout=30.0)  # hold the socket open, silent
            finally:
                sock.close()

        with RemoteCoordinator(
            expected_workers=1, connect_timeout=15.0, worker_timeout=0.8
        ) as coord:
            threading.Thread(
                target=_hang, args=(coord.address,), daemon=True
            ).start()

            def _relief():
                holding.wait(timeout=15.0)
                run_worker(
                    coord.address, retry_seconds=10.0, max_runs=1,
                    heartbeat_interval=0.2, log=lambda line: None,
                )

            threading.Thread(target=_relief, daemon=True).start()
            try:
                outcomes = dict(coord.serve(wire_trial, make_shards(specs)))
            finally:
                release.set()
        assert {status for status, _ in outcomes.values()} == {"ok"}
        assert coord.workers_lost == 1 and len(coord.requeued) == 1


# -- end-to-end through ParallelRunner (subprocess workers) --------------------


class TestRemoteBackend:
    def test_registered(self):
        from repro.runner import available_backends

        assert "remote" in available_backends()

    def test_workers_option_parsing(self):
        # --workers accepts a count or comma-separated names (the list's
        # length is the expected fleet size — workers dial in, the
        # coordinator cannot dial out to names).
        assert RemoteBackend(workers=3).expected_workers == 3
        assert RemoteBackend(workers="3").expected_workers == 3
        assert RemoteBackend(workers="mach-a, mach-b").expected_workers == 2
        assert RemoteBackend(workers=["a", "b", "c"]).expected_workers == 3
        # neither workers nor spawn_workers: n_jobs localhost workers
        assert RemoteBackend(n_jobs=4).spawn_workers == 4
        # external fleets default to the well-known port; spawn mode
        # binds loopback-ephemeral
        assert RemoteBackend(workers=2).bind == f"0.0.0.0:{DEFAULT_PORT}"
        assert RemoteBackend().bind == "127.0.0.1:0"
        with pytest.raises(ValueError, match="names no workers"):
            RemoteBackend(workers=" , ")
        with pytest.raises(ValueError):
            RemoteBackend(spawn_workers=-1)

    def test_spawned_workers_match_serial(self):
        specs = make_specs(5)
        expected = ParallelRunner(n_jobs=1).run("remote-unit", wire_trial, specs)
        runner = ParallelRunner(
            n_jobs=2, backend="remote",
            backend_options={"spawn_workers": 2, "connect_timeout": 60.0},
        )
        got = runner.run("remote-unit", wire_trial, specs)
        assert list(got) == list(expected)
        assert runner.backend.name == "remote"
        assert runner.last_stats.shards_executed == 5

    def test_remote_error_carries_worker_traceback(self):
        runner = ParallelRunner(
            n_jobs=1, backend="remote",
            backend_options={"spawn_workers": 1, "connect_timeout": 60.0},
        )
        with pytest.raises(ShardExecutionError) as excinfo:
            runner.run("remote-unit", remote_fragile_trial, make_specs(2))
        error = excinfo.value
        assert error.backend == "remote"
        assert "remote boom in trial 1" in error.worker_traceback
        assert "Traceback (most recent call last)" in str(error)

    def test_cache_resume_needs_no_workers(self, tmp_path):
        specs = make_specs(3)
        first = ParallelRunner(
            n_jobs=1, backend="remote", cache_dir=tmp_path,
            backend_options={"spawn_workers": 1, "connect_timeout": 60.0},
        )
        expected = first.run("remote-unit", wire_trial, specs)
        assert first.last_stats.shards_stored == 3
        # Fully cached: run_shards is never called, so a zero-second
        # connect window cannot bite — resume is coordinator-side only.
        resumed = ParallelRunner(
            n_jobs=1, backend="remote", cache_dir=tmp_path,
            backend_options={"spawn_workers": 1, "connect_timeout": 0.001},
        )
        got = resumed.run("remote-unit", wire_trial, specs)
        assert list(got) == list(expected)
        assert resumed.last_stats.shards_executed == 0
        assert resumed.last_stats.shards_cached == 3

    def test_killed_worker_shard_is_requeued(self):
        # One worker dies via os._exit the moment it receives a shard
        # (--die-after 0); the fleet still finishes every shard and the
        # payloads still match serial.
        port = free_port()
        address = f"127.0.0.1:{port}"
        env = worker_env()
        command = [sys.executable, "-m", "repro", "worker", address,
                   "--max-runs", "1"]
        workers = [
            subprocess.Popen(command + ["--die-after", "0"], env=env),
            subprocess.Popen(command, env=env),
        ]
        try:
            specs = make_specs(4)
            expected = ParallelRunner(n_jobs=1).run(
                "remote-unit", wire_trial, specs
            )
            runner = ParallelRunner(
                n_jobs=2, backend="remote",
                backend_options={
                    "workers": 2, "bind": address,
                    "connect_timeout": 60.0, "worker_timeout": 30.0,
                },
            )
            got = runner.run("remote-unit", wire_trial, specs)
            assert list(got) == list(expected)
        finally:
            codes = [w.wait(timeout=30) for w in workers]
        assert codes[0] == 3  # died by injection, mid-shard
        assert codes[1] == 0  # survivor finished the campaign


class TestWorkerCLI:
    def test_no_coordinator_exits_one(self):
        port = free_port()
        code = run_worker(
            f"127.0.0.1:{port}", retry_seconds=0.3, log=lambda line: None
        )
        assert code == 1

    def test_cli_verb_runs_worker(self):
        # `repro worker` end to end: spawn the verb, then serve one
        # campaign through it.
        port = free_port()
        address = f"127.0.0.1:{port}"
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "worker", address,
             "--max-runs", "1", "--name", "verb-check"],
            env=worker_env(), stdout=subprocess.PIPE, text=True,
        )
        try:
            specs = make_specs(2)
            shards = make_shards(specs)
            with RemoteCoordinator(
                bind=address, expected_workers=1, connect_timeout=60.0
            ) as coord:
                outcomes = dict(coord.serve(wire_trial, shards))
            assert {status for status, _ in outcomes.values()} == {"ok"}
        finally:
            out, _ = process.communicate(timeout=30)
        assert process.returncode == 0
        assert "verb-check" in out
