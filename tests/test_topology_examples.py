"""The worked Figure 1 / Figure 2 examples must match the paper."""

import numpy as np

from repro.core.augmented import augmented_matrix, augmented_rank
from repro.topology.examples import (
    figure1_rate_ambiguity,
)


class TestFigure1:
    def test_routing_matrix_is_the_papers(self, figure1):
        _, _, routing = figure1
        expected = [[1, 1, 0, 0, 0], [1, 0, 1, 1, 0], [1, 0, 1, 0, 1]]
        assert routing.matrix.tolist() == expected

    def test_rank_deficient_first_moments(self, figure1):
        _, _, routing = figure1
        assert routing.rank() == 3 < routing.num_links

    def test_augmented_matrix_matches_paper(self, figure1):
        """The paper prints A for the single-beacon example explicitly."""
        _, _, routing = figure1
        A = augmented_matrix(routing.matrix)
        expected = np.array(
            [
                [1, 1, 0, 0, 0],
                [1, 0, 0, 0, 0],
                [1, 0, 0, 0, 0],
                [1, 0, 1, 1, 0],
                [1, 0, 1, 0, 0],
                [1, 0, 1, 0, 1],
            ],
            dtype=np.float64,
        )
        assert np.array_equal(A, expected)

    def test_variances_identifiable(self, figure1):
        _, _, routing = figure1
        assert augmented_rank(routing.matrix) == routing.num_links

    def test_rate_ambiguity_is_real(self, figure1):
        """Two rate assignments, identical path products (Figure 1's point)."""
        _, _, routing = figure1
        a, b = figure1_rate_ambiguity()
        assert a != b
        log_a = routing.aggregate_log_rates(np.log(a))
        log_b = routing.aggregate_log_rates(np.log(b))
        R = routing.to_dense()
        assert np.allclose(R @ log_a, R @ log_b)


class TestFigure2:
    def test_counts_match_paper(self, figure2):
        _, paths, routing = figure2
        assert len(paths) == 6
        assert routing.num_links == 8
        assert routing.rank() == 5

    def test_rank_deficient_but_variance_identifiable(self, figure2):
        _, _, routing = figure2
        assert routing.rank() < min(routing.num_paths, routing.num_links)
        assert augmented_rank(routing.matrix) == routing.num_links

    def test_no_aliases_remain(self, figure2):
        _, _, routing = figure2
        assert all(v.size == 1 for v in routing.virtual_links)

    def test_paths_form_trees_per_beacon(self, figure2):
        _, paths, _ = figure2
        from repro.topology.fluttering import find_fluttering_pairs

        assert find_fluttering_pairs(paths) == []
