"""repro.analysis lint engine tests.

Three layers:

* per-rule fixtures — for every built-in rule, at least one snippet
  that fires and one that stays clean, built as scratch ``repro/``
  package trees so payload classification and module naming run the
  same code paths the real tree does;
* the acceptance seams ISSUE 10 names — copies of the *real*
  ``cli.py``/``registry.py`` and kernel backend sources with one
  registry entry or one backend function deleted must fail the
  ``registry-sync`` / ``kernel-parity`` rules;
* the engine/CLI surface — suppression comments, JSON/text reports,
  exit codes, and the pin that ``repro lint src/`` is clean at HEAD.
"""

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis.base import (
    Rule,
    available_rules,
    register_rule,
    unregister_rule,
)
from repro.analysis.cli import main as lint_main
from repro.analysis.cli import run_lint
from repro.analysis.engine import lint_paths
from repro.analysis.findings import Finding, parse_suppressions
from repro.analysis.project import module_name_for
from repro.analysis.rules.concurrency import (
    ContainerMutationRule,
    GlobalRebindRule,
)
from repro.analysis.rules.determinism import (
    SetIterationRule,
    UnseededRandomRule,
    WallClockRule,
)
from repro.analysis.rules.kernel_parity import (
    KernelTierParityRule,
    NjitConstructsRule,
)
from repro.analysis.rules.registry_sync import RegistrySyncRule

REPO_SRC = Path(__file__).resolve().parents[1] / "src"


def write_tree(root, files):
    """Materialise ``{relative_path: source}`` under *root*."""
    for relative, source in files.items():
        path = root / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
    return root


def payload_tree(root, module_source, relative="repro/api/mod.py"):
    """A minimal tree where *relative* sits inside the payload closure."""
    return write_tree(
        root,
        {
            "repro/__init__.py": "",
            "repro/api/__init__.py": "",
            relative: module_source,
        },
    )


def findings_for(root, rule):
    report = lint_paths([root], [rule])
    return report.findings


def rule_ids(findings):
    return [finding.rule_id for finding in findings]


# -- project model -------------------------------------------------------------


def test_module_name_walks_packages(tmp_path):
    write_tree(
        tmp_path,
        {
            "repro/__init__.py": "",
            "repro/core/__init__.py": "",
            "repro/core/engine.py": "",
            "loose_script.py": "",
        },
    )
    name, is_package = module_name_for(tmp_path / "repro/core/engine.py")
    assert (name, is_package) == ("repro.core.engine", False)
    name, is_package = module_name_for(tmp_path / "repro/core/__init__.py")
    assert (name, is_package) == ("repro.core", True)
    name, is_package = module_name_for(tmp_path / "loose_script.py")
    assert (name, is_package) == ("loose_script", False)


def test_payload_closure_reaches_transitive_imports(tmp_path):
    # helper is imported by a payload root; bystander is not.
    write_tree(
        tmp_path,
        {
            "repro/__init__.py": "",
            "repro/api/__init__.py": "import repro.helper\n",
            "repro/helper.py": "import random\nx = random.random()\n",
            "repro/bystander.py": "import random\ny = random.random()\n",
        },
    )
    findings = findings_for(tmp_path, UnseededRandomRule())
    paths = {finding.path for finding in findings}
    assert any(path.endswith("helper.py") for path in paths)
    assert not any(path.endswith("bystander.py") for path in paths)


def test_free_standing_script_importing_repro_is_payload(tmp_path):
    write_tree(
        tmp_path,
        {
            "scripts/drive.py": (
                "import random\nimport repro\nseed = random.random()\n"
            ),
            "scripts/unrelated.py": "import random\nx = random.random()\n",
        },
    )
    findings = findings_for(tmp_path, UnseededRandomRule())
    assert [Path(f.path).name for f in findings] == ["drive.py"]


# -- determinism rules ---------------------------------------------------------


def test_unseeded_random_fires_on_global_rng(tmp_path):
    payload_tree(
        tmp_path,
        """
        import numpy as np
        import random

        def draw():
            return np.random.rand(3), random.random()
        """,
    )
    findings = findings_for(tmp_path, UnseededRandomRule())
    assert rule_ids(findings) == ["unseeded-random", "unseeded-random"]


def test_unseeded_random_fires_on_seedless_factory(tmp_path):
    payload_tree(
        tmp_path,
        """
        from numpy.random import default_rng

        def draw():
            return default_rng()
        """,
    )
    findings = findings_for(tmp_path, UnseededRandomRule())
    assert rule_ids(findings) == ["unseeded-random"]


def test_unseeded_random_clean_on_seeded_generators(tmp_path):
    payload_tree(
        tmp_path,
        """
        import random

        import numpy as np

        def draw(seed):
            rng = np.random.default_rng(seed)
            stdlib = random.Random(seed)
            return rng.normal(), stdlib.random()
        """,
    )
    assert findings_for(tmp_path, UnseededRandomRule()) == []


def test_wall_clock_fires_and_perf_counter_is_exempt(tmp_path):
    payload_tree(
        tmp_path,
        """
        import time

        def stamp():
            return time.time()

        def duration():
            return time.perf_counter()
        """,
    )
    findings = findings_for(tmp_path, WallClockRule())
    assert rule_ids(findings) == ["wall-clock"]
    assert findings[0].line == 5


def test_wall_clock_ignores_non_payload_modules(tmp_path):
    write_tree(
        tmp_path,
        {
            "repro/__init__.py": "",
            "repro/tools.py": "import time\nts = time.time()\n",
        },
    )
    assert findings_for(tmp_path, WallClockRule()) == []


def test_set_iteration_fires_on_order_escapes(tmp_path):
    payload_tree(
        tmp_path,
        """
        def leak(xs):
            out = []
            for x in {1, 2, 3}:
                out.append(x)
            ordered = list(set(xs))
            squares = [x * x for x in set(xs)]
            return out, ordered, squares
        """,
    )
    findings = findings_for(tmp_path, SetIterationRule())
    assert rule_ids(findings) == ["set-iteration"] * 3


def test_set_iteration_clean_when_sorted(tmp_path):
    payload_tree(
        tmp_path,
        """
        def stable(xs):
            members = set(xs)
            if 3 in members:
                return sorted(members)
            return sorted(set(xs))
        """,
    )
    assert findings_for(tmp_path, SetIterationRule()) == []


# -- registry-sync -------------------------------------------------------------

SYNC_FILES = {
    "repro/__init__.py": "",
    "repro/api/__init__.py": "",
    "repro/api/adapters.py": """
        class LIAEstimator:
            name = "lia"

        class TomoEstimator:
            name = "tomo"
        """,
    "repro/api/registry.py": """
        from repro.api.adapters import LIAEstimator, TomoEstimator

        _REGISTRY = {
            LIAEstimator.name: LIAEstimator,
            TomoEstimator.name: TomoEstimator,
            "scfs": object,
        }

        def register(name, factory):
            _REGISTRY[name] = factory

        register("clink", object)
        """,
    "repro/cli.py": """
        METHOD_CHOICES = ("clink", "lia", "scfs", "tomo")
        """,
}


def test_registry_sync_clean_when_mirror_matches(tmp_path):
    write_tree(tmp_path, SYNC_FILES)
    assert findings_for(tmp_path, RegistrySyncRule()) == []


def test_registry_sync_fires_on_drift_both_ways(tmp_path):
    files = dict(SYNC_FILES)
    files["repro/cli.py"] = """
        METHOD_CHOICES = ("clink", "lia", "scfs", "vanished")
        """
    write_tree(tmp_path, files)
    findings = findings_for(tmp_path, RegistrySyncRule())
    assert rule_ids(findings) == ["registry-sync"]
    assert "missing tomo" in findings[0].message
    assert "stale vanished" in findings[0].message


def test_registry_sync_fires_when_mirror_is_deleted(tmp_path):
    files = dict(SYNC_FILES)
    files["repro/cli.py"] = "OTHER = 1\n"
    write_tree(tmp_path, files)
    findings = findings_for(tmp_path, RegistrySyncRule())
    assert rule_ids(findings) == ["registry-sync"]
    assert "METHOD_CHOICES is gone" in findings[0].message


def test_registry_sync_fires_on_unresolvable_registry_key(tmp_path):
    files = dict(SYNC_FILES)
    files["repro/api/registry.py"] = """
        _REGISTRY = {compute_name(): object}
        """
    write_tree(tmp_path, files)
    findings = findings_for(tmp_path, RegistrySyncRule())
    assert rule_ids(findings) == ["registry-sync"]
    assert "cannot statically resolve" in findings[0].message


def test_registry_sync_catches_deleted_entry_in_real_sources(tmp_path):
    """ISSUE acceptance: deleting one registry entry fails the lint."""
    registry_source = (REPO_SRC / "repro/api/registry.py").read_text()
    broken = registry_source.replace(
        "    TomoEstimator.name: TomoEstimator,\n", ""
    )
    assert broken != registry_source
    write_tree(
        tmp_path,
        {
            "repro/__init__.py": "",
            "repro/api/__init__.py": "",
        },
    )
    (tmp_path / "repro/cli.py").write_text(
        (REPO_SRC / "repro/cli.py").read_text()
    )
    (tmp_path / "repro/api/adapters.py").write_text(
        (REPO_SRC / "repro/api/adapters.py").read_text()
    )
    (tmp_path / "repro/api/registry.py").write_text(broken)
    findings = findings_for(tmp_path, RegistrySyncRule())
    assert any(
        finding.rule_id == "registry-sync" and "tomo" in finding.message
        for finding in findings
    )


# -- kernel parity -------------------------------------------------------------

KERNEL_FILES = {
    "repro/__init__.py": "",
    "repro/core/__init__.py": "",
    "repro/core/kernels/__init__.py": """
        KERNEL_OPS = ("alpha", "beta")
        """,
    "repro/core/kernels/numpy_backend.py": """
        def alpha(x, y):
            return x + y

        beta = None
        """,
    "repro/core/kernels/numba_backend.py": """
        def alpha(x, y):
            return x + y

        def beta(x):
            return x
        """,
}


def test_kernel_parity_clean_with_explicit_none_optout(tmp_path):
    write_tree(tmp_path, KERNEL_FILES)
    assert findings_for(tmp_path, KernelTierParityRule()) == []


def test_kernel_parity_fires_on_missing_backend_function(tmp_path):
    files = dict(KERNEL_FILES)
    files["repro/core/kernels/numba_backend.py"] = """
        def alpha(x, y):
            return x + y
        """
    write_tree(tmp_path, files)
    findings = findings_for(tmp_path, KernelTierParityRule())
    assert rule_ids(findings) == ["kernel-parity"]
    assert "'beta'" in findings[0].message


def test_kernel_parity_fires_on_signature_drift(tmp_path):
    files = dict(KERNEL_FILES)
    files["repro/core/kernels/numba_backend.py"] = """
        def alpha(x, z):
            return x + z

        def beta(x):
            return x
        """
    write_tree(tmp_path, files)
    findings = findings_for(tmp_path, KernelTierParityRule())
    assert rule_ids(findings) == ["kernel-parity"]
    assert "signature drifted" in findings[0].message


def test_kernel_parity_catches_deleted_op_in_real_sources(tmp_path):
    """ISSUE acceptance: deleting one backend kernel fails the lint."""
    kernels_dir = REPO_SRC / "repro/core/kernels"
    numba_source = (kernels_dir / "numba_backend.py").read_text()
    broken = numba_source.replace("def cgs2_project(", "def cgs2_gone(")
    assert broken != numba_source
    write_tree(
        tmp_path,
        {
            "repro/__init__.py": "",
            "repro/core/__init__.py": "",
        },
    )
    target = tmp_path / "repro/core/kernels"
    target.mkdir()
    (target / "__init__.py").write_text(
        (kernels_dir / "__init__.py").read_text()
    )
    (target / "numpy_backend.py").write_text(
        (kernels_dir / "numpy_backend.py").read_text()
    )
    (target / "numba_backend.py").write_text(broken)
    findings = findings_for(tmp_path, KernelTierParityRule())
    assert any(
        finding.rule_id == "kernel-parity"
        and "'cgs2_project'" in finding.message
        and "numba_backend" in finding.message
        for finding in findings
    )


def test_njit_rule_flags_unsupported_constructs(tmp_path):
    write_tree(
        tmp_path,
        {
            "mod.py": """
            from numba import njit

            @njit(cache=True)
            def bad(n):
                label = f"n={n}"
                pairs = {i: i for i in range(n)}
                return label, pairs

            @njit
            def good(n):
                total = 0
                for i in range(n):
                    total += i
                return total

            def plain(n):
                return f"{n}"
            """,
        },
    )
    findings = findings_for(tmp_path, NjitConstructsRule())
    assert rule_ids(findings) == ["njit-unsupported"] * 2
    assert all("'bad'" in finding.message for finding in findings)


# -- concurrency ---------------------------------------------------------------


def test_unlocked_global_fires_without_lock(tmp_path):
    write_tree(
        tmp_path,
        {
            "mod.py": """
            _cache = None

            def set_cache(value):
                global _cache
                _cache = value
            """,
        },
    )
    findings = findings_for(tmp_path, GlobalRebindRule())
    assert rule_ids(findings) == ["unlocked-global"]
    assert "set_cache" in findings[0].message


def test_unlocked_global_clean_under_lock(tmp_path):
    write_tree(
        tmp_path,
        {
            "mod.py": """
            import threading

            _LOCK = threading.Lock()
            _cache = None

            def set_cache(value):
                global _cache
                with _LOCK:
                    _cache = value
            """,
        },
    )
    assert findings_for(tmp_path, GlobalRebindRule()) == []


def test_unlocked_mutation_fires_on_registry_write(tmp_path):
    write_tree(
        tmp_path,
        {
            "mod.py": """
            _REGISTRY = {}
            _ORDER = []

            def register(name, factory):
                _REGISTRY[name] = factory
                _ORDER.append(name)
            """,
        },
    )
    findings = findings_for(tmp_path, ContainerMutationRule())
    assert rule_ids(findings) == ["unlocked-mutation"] * 2


def test_unlocked_mutation_clean_under_lock_and_for_shadowed_params(tmp_path):
    write_tree(
        tmp_path,
        {
            "mod.py": """
            import threading

            _LOCK = threading.Lock()
            _REGISTRY = {}

            def register(name, factory):
                with _LOCK:
                    _REGISTRY[name] = factory

            def local_only(_REGISTRY):
                _REGISTRY["x"] = 1
            """,
        },
    )
    assert findings_for(tmp_path, ContainerMutationRule()) == []


# -- suppressions --------------------------------------------------------------


def test_parse_suppressions_inline_and_preceding_line():
    source = textwrap.dedent(
        """
        import time

        # reprolint: disable=wall-clock -- label only
        a = time.time()
        b = time.time()  # reprolint: disable=wall-clock,unseeded-random
        c = time.time()  # reprolint: disable=all -- escape hatch
        """
    )
    suppressions = parse_suppressions(source)
    assert suppressions[5] == frozenset({"wall-clock"})
    assert suppressions[6] == frozenset({"wall-clock", "unseeded-random"})
    assert suppressions[7] == frozenset({"all"})


def test_suppressed_finding_moves_to_suppressed_list(tmp_path):
    payload_tree(
        tmp_path,
        """
        import time

        def stamp():
            # reprolint: disable=wall-clock -- metadata, not payload
            return time.time()
        """,
    )
    report = lint_paths([tmp_path], [WallClockRule()])
    assert report.findings == []
    assert rule_ids(report.suppressed) == ["wall-clock"]


def test_mismatched_suppression_does_not_hide_finding(tmp_path):
    payload_tree(
        tmp_path,
        """
        import time

        def stamp():
            return time.time()  # reprolint: disable=set-iteration
        """,
    )
    report = lint_paths([tmp_path], [WallClockRule()])
    assert rule_ids(report.findings) == ["wall-clock"]
    assert report.suppressed == []


# -- engine / report / CLI -----------------------------------------------------


def test_syntax_error_becomes_finding_not_crash(tmp_path):
    write_tree(tmp_path, {"broken.py": "def nope(:\n"})
    report = lint_paths([tmp_path])
    assert rule_ids(report.findings) == ["syntax-error"]
    assert report.exit_code == 1


def test_rule_registry_round_trip():
    class ProbeRule(Rule):
        rule_id = "probe-rule"
        description = "test-only"

    assert "probe-rule" not in available_rules()
    register_rule(ProbeRule())
    try:
        assert "probe-rule" in available_rules()
        with pytest.raises(ValueError, match="already registered"):
            register_rule(ProbeRule())
        register_rule(ProbeRule(), overwrite=True)
    finally:
        unregister_rule("probe-rule")
    assert "probe-rule" not in available_rules()


def test_finding_ordering_and_render():
    first = Finding("a.py", 3, 0, "wall-clock", "msg")
    second = Finding("a.py", 10, 2, "wall-clock", "msg")
    assert sorted([second, first]) == [first, second]
    assert first.render() == "a.py:3:0: wall-clock: msg"


def test_cli_json_format_and_exit_code(tmp_path, capsys):
    payload_tree(
        tmp_path,
        """
        import time

        def stamp():
            return time.time()
        """,
    )
    code = lint_main(
        ["--format", "json", "--rule", "wall-clock", str(tmp_path)]
    )
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    assert payload["rules"] == ["wall-clock"]
    assert [f["rule_id"] for f in payload["findings"]] == ["wall-clock"]


def test_cli_clean_run_writes_summary_file(tmp_path, capsys):
    write_tree(tmp_path, {"clean.py": "x = 1\n"})
    summary = tmp_path / "summary.md"
    code = run_lint([str(tmp_path / "clean.py")], summary_file=str(summary))
    assert code == 0
    assert "0 finding(s)" in capsys.readouterr().out
    assert "reprolint: clean" in summary.read_text()


def test_cli_usage_errors_exit_2(tmp_path, capsys):
    assert run_lint([str(tmp_path / "missing")]) == 2
    assert run_lint([str(tmp_path)], rule_ids=["no-such-rule"]) == 2
    errors = capsys.readouterr().err
    assert "missing" in errors
    assert "no-such-rule" in errors


def test_head_tree_is_lint_clean():
    """The acceptance pin: `repro lint src/` exits 0 at HEAD."""
    report = lint_paths([REPO_SRC])
    assert report.findings == []
