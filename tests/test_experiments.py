"""Smoke + shape tests of the experiment harness (tiny scale).

Each experiment must run, render, and exhibit the paper's qualitative
shape.  Tolerances are loose: tiny scale uses few links and snapshots.
"""

import numpy as np
import pytest

from repro.experiments import EXPERIMENTS, scale_params
from repro.experiments.base import (
    make_topology,
    prepare_topology,
    repetition_seeds,
    run_lia_trial,
)


class TestHarnessPlumbing:
    def test_registry_covers_all_paper_artifacts(self):
        expected = {
            "fig3", "fig5", "fig6", "fig7", "fig8", "fig9",
            "table2", "table3", "timing", "duration", "ablations",
            "congestion",
        }
        assert set(EXPERIMENTS) == expected

    def test_scale_presets(self):
        assert scale_params("paper").snapshots == 50
        assert scale_params("paper").probes == 1000
        with pytest.raises(ValueError):
            scale_params("huge")

    def test_unknown_topology_kind(self):
        with pytest.raises(ValueError):
            make_topology("bogus", scale_params("tiny"), 0)

    def test_repetition_seeds(self):
        seeds = repetition_seeds(5, 3)
        assert len(set(seeds)) == 3
        assert repetition_seeds(None, 2) == [None, None]

    def test_trial_outcome_fields(self):
        prepared = prepare_topology("tree", scale_params("tiny"), 3)
        trial = run_lia_trial(prepared, 4, snapshots=8, probes=200)
        assert 0 <= trial.detection.detection_rate <= 1
        assert trial.accuracy.absolute_errors.maximum >= 0


class TestShapes:
    def test_fig3_monotone_variance(self):
        result = EXPERIMENTS["fig3"](scale="tiny", seed=0)
        assert result.data["spearman"] > 0.5
        assert result.data["monotone_fraction"] >= 0.5

    def test_fig5_lia_beats_scfs(self):
        result = EXPERIMENTS["fig5"](scale="tiny", seed=0)
        grid = result.data["grid"]
        best_m = max(grid)
        lia_dr = np.mean(result.data["lia_dr"][best_m])
        scfs_dr = np.mean(result.data["scfs_dr"])
        lia_fpr = np.mean(result.data["lia_fpr"][best_m])
        scfs_fpr = np.mean(result.data["scfs_fpr"])
        assert lia_dr >= scfs_dr
        assert lia_fpr <= scfs_fpr

    def test_fig6_errors_concentrated(self):
        result = EXPERIMENTS["fig6"](scale="tiny", seed=0)
        abs_cdf = result.data["abs_cdf"]
        assert abs_cdf.at(0.05) > 0.9  # nearly all errors far below 5%

    def test_fig7_ratio_below_one(self):
        result = EXPERIMENTS["fig7"](scale="tiny", seed=0)
        for kind, entry in result.data.items():
            for ratio in entry["ratios"]:
                assert ratio <= 1.5  # sampling noise allowance at tiny scale

    def test_fig9_high_consistency(self):
        result = EXPERIMENTS["fig9"](scale="tiny", seed=0)
        rates = result.data["rates"]
        best = max(rates)
        assert np.mean(rates[best]) > 0.7

    def test_timing_structure(self):
        result = EXPERIMENTS["timing"](scale="tiny", seed=0)
        assert result.data["build_a"] > 0
        assert result.data["infer"] > 0
        # Batch pipelines keep the incremental cache paths cold (they
        # are opt-in, monitor-only): payloads stay seed-for-seed
        # identical to the pre-incremental code.  Plain memo reuse
        # (exact hits) stays on.
        info = result.data["cache_info"]
        assert info["factorization"]["updates"] == 0
        assert info["factorization"]["downdates"] == 0
        assert info["reduction"]["updates"] == 0
        assert info["factorization"]["hits"] >= 1
        assert "engine cache statistics" in result.render()

    def test_duration_payload_seed_for_seed_deterministic(self):
        first = EXPERIMENTS["duration"](scale="tiny", seed=0)
        second = EXPERIMENTS["duration"](scale="tiny", seed=0)

        def equal(a, b):
            if isinstance(a, dict):
                return set(a) == set(b) and all(
                    equal(a[k], b[k]) for k in a
                )
            if isinstance(a, (list, tuple)):
                return len(a) == len(b) and all(
                    equal(x, y) for x, y in zip(a, b)
                )
            if isinstance(a, np.ndarray):
                return np.array_equal(a, b)
            return a == b

        assert equal(first.data, second.data)

    def test_duration_runs_have_short_tail(self):
        result = EXPERIMENTS["duration"](scale="tiny", seed=0)
        lengths = result.data["inferred_lengths"]
        if lengths:
            assert np.mean(np.asarray(lengths) <= 2) > 0.5

    def test_render_is_text(self):
        result = EXPERIMENTS["fig3"](scale="tiny", seed=1)
        text = result.render()
        assert "fig3" in text and "|" in text
