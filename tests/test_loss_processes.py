"""Statistical tests of the Gilbert and Bernoulli loss processes."""

import numpy as np
import pytest

from repro.lossmodel import (
    STREAMING_CHUNK,
    STREAMING_PROBE_THRESHOLD,
    BernoulliProcess,
    GilbertProcess,
)


class TestGilbert:
    def test_stationary_loss_rate_matches_target(self):
        process = GilbertProcess()
        rates = np.array([0.01, 0.05, 0.1, 0.2, 0.5])
        states = process.sample_states(rates, 20_000, seed=0)
        empirical = states.mean(axis=1)
        assert np.allclose(empirical, rates, atol=0.02)

    def test_transition_formula(self):
        process = GilbertProcess(stay_bad=0.35)
        # pi_bad = g2b / (g2b + 0.65) must equal the target rate.
        rates = np.array([0.01, 0.1, 0.3])
        g2b = process.good_to_bad(rates)
        stationary = g2b / (g2b + (1 - 0.35))
        assert np.allclose(stationary, rates)

    def test_burstiness_exceeds_bernoulli(self):
        """Gilbert snapshot loss fractions must vary more than Bernoulli's."""
        rate = np.full(200, 0.1)
        probes = 500
        g = GilbertProcess().sample_states(rate, probes, seed=1).mean(axis=1)
        b = BernoulliProcess().sample_states(rate, probes, seed=1).mean(axis=1)
        assert g.var() > 1.3 * b.var()

    def test_mean_burst_length(self):
        process = GilbertProcess(stay_bad=0.35)
        assert process.burst_length_mean() == pytest.approx(1 / 0.65)
        states = process.sample_states(np.array([0.2]), 200_000, seed=2)[0]
        # Measure empirical mean run length of bad states.
        runs = []
        count = 0
        for s in states:
            if s:
                count += 1
            elif count:
                runs.append(count)
                count = 0
        assert np.mean(runs) == pytest.approx(1 / 0.65, rel=0.1)

    def test_zero_rate_never_drops(self):
        states = GilbertProcess().sample_states(np.array([0.0]), 1000, seed=3)
        assert not states.any()

    def test_extreme_rate_capped(self):
        states = GilbertProcess().sample_states(np.array([1.0]), 1000, seed=4)
        assert states.mean() > 0.95

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            GilbertProcess(stay_bad=1.0)
        with pytest.raises(ValueError):
            GilbertProcess().sample_states(np.array([0.5]), 0)
        with pytest.raises(ValueError):
            GilbertProcess().sample_states(np.array([1.5]), 10)

    def test_seeded_reproducibility(self):
        p = GilbertProcess()
        a = p.sample_states(np.array([0.1, 0.2]), 100, seed=42)
        b = p.sample_states(np.array([0.1, 0.2]), 100, seed=42)
        assert np.array_equal(a, b)


class TestBernoulli:
    def test_loss_rate_matches(self):
        rates = np.array([0.05, 0.2])
        states = BernoulliProcess().sample_states(rates, 50_000, seed=0)
        assert np.allclose(states.mean(axis=1), rates, atol=0.01)

    def test_fraction_shortcut_matches_distribution(self):
        rates = np.full(2000, 0.1)
        fractions = BernoulliProcess().sample_loss_fractions(rates, 400, seed=1)
        assert fractions.mean() == pytest.approx(0.1, abs=0.005)
        # Binomial variance p(1-p)/n.
        assert fractions.var() == pytest.approx(0.1 * 0.9 / 400, rel=0.2)

    def test_no_memory(self):
        """Consecutive Bernoulli states are uncorrelated (lag-1 autocorr ~0)."""
        states = BernoulliProcess().sample_states(
            np.array([0.3]), 100_000, seed=2
        )[0].astype(float)
        lag1 = np.corrcoef(states[:-1], states[1:])[0, 1]
        assert abs(lag1) < 0.02

    def test_gilbert_has_memory(self):
        """Lag-1 autocorrelation ~= stay_bad - g2b (0.071 at rate 0.3)."""
        states = GilbertProcess().sample_states(
            np.array([0.3]), 200_000, seed=2
        )[0].astype(float)
        lag1 = np.corrcoef(states[:-1], states[1:])[0, 1]
        expected = 0.35 - 0.65 * 0.3 / 0.7
        assert lag1 == pytest.approx(expected, abs=0.02)


class TestStreamingFractions:
    """The chunked fraction path above STREAMING_PROBE_THRESHOLD."""

    RATES = np.array([0.0, 0.02, 0.1, 0.4])

    def test_gilbert_chunks_are_bit_identical_to_states(self):
        process = GilbertProcess()
        probes = 5000
        full = process.sample_states(self.RATES, probes, seed=7)
        for chunk_size in (512, 1000, probes):
            blocks = list(
                process.iter_state_chunks(
                    self.RATES, probes, seed=7, chunk_size=chunk_size
                )
            )
            assert sum(b.shape[1] for b in blocks) == probes
            assert np.array_equal(np.concatenate(blocks, axis=1), full)

    def test_streamed_fractions_equal_materialised_means(self):
        probes = STREAMING_PROBE_THRESHOLD + 3 * STREAMING_CHUNK + 17
        process = GilbertProcess()
        fractions = process.sample_loss_fractions(self.RATES, probes, seed=5)
        states = process.sample_states(self.RATES, probes, seed=5)
        assert np.array_equal(fractions, states.mean(axis=1))

    def test_below_threshold_materialises(self):
        """At or below the threshold the old exact path is untouched."""
        process = GilbertProcess()
        fractions = process.sample_loss_fractions(
            self.RATES, STREAMING_PROBE_THRESHOLD, seed=3
        )
        states = process.sample_states(
            self.RATES, STREAMING_PROBE_THRESHOLD, seed=3
        )
        assert np.array_equal(fractions, states.mean(axis=1))

    def test_default_iterator_is_one_block(self):
        """The base-class fallback yields the whole realisation at once."""

        class OneShot(BernoulliProcess):
            pass

        # BernoulliProcess overrides sample_loss_fractions with the
        # binomial shortcut; the inherited chunk iterator must still be
        # the single-block default.
        blocks = list(
            OneShot().iter_state_chunks(self.RATES, 6000, seed=1)
        )
        assert len(blocks) == 1 and blocks[0].shape == (4, 6000)
