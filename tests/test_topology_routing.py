"""Unit tests for routing-matrix construction and reductions."""

import numpy as np
import pytest

from repro.topology.graph import Network, build_paths
from repro.topology.routing import RoutingMatrix


def chain_with_branch():
    """B -> a -> b -> {D1, D2}: links (B,a), (a,b) are aliases."""
    net = Network()
    net.add_link(0, 1)  # B -> a
    net.add_link(1, 2)  # a -> b
    net.add_link(2, 3)  # b -> D1
    net.add_link(2, 4)  # b -> D2
    paths = build_paths(net, [0], [3, 4])
    return net, paths


class TestAliasReduction:
    def test_alias_chain_merged(self):
        net, paths = chain_with_branch()
        routing = RoutingMatrix.from_paths(paths)
        # 4 physical links -> 3 columns (the two chain links merge).
        assert routing.num_links == 3
        merged = [v for v in routing.virtual_links if v.size == 2]
        assert len(merged) == 1
        assert merged[0].member_indices() == (0, 1)

    def test_columns_distinct_and_nonzero(self, small_tree):
        _, _, routing = small_tree
        cols = {routing.matrix[:, c].tobytes() for c in range(routing.num_links)}
        assert len(cols) == routing.num_links
        assert routing.matrix.sum(axis=0).min() >= 1

    def test_without_reduction_keeps_duplicates(self):
        net, paths = chain_with_branch()
        raw = RoutingMatrix.from_paths(paths, reduce_aliases=False)
        assert raw.num_links == 4

    def test_uncovered_links_dropped(self):
        net = Network()
        net.add_link(0, 1)
        net.add_link(1, 2)
        net.add_link(1, 3)
        net.add_link(3, 4)  # never traversed: dest set is {2, 3}
        paths = build_paths(net, [0], [2, 3])
        routing = RoutingMatrix.from_paths(paths)
        assert routing.column_of_physical(3) is None

    def test_column_of_physical_round_trip(self, small_tree):
        _, paths, routing = small_tree
        for path in paths[:10]:
            for link in path.links:
                column = routing.column_of_physical(link.index)
                assert column is not None
                assert routing.matrix[path.index, column] == 1


class TestMatrixProperties:
    def test_figure1_matrix_matches_paper(self, figure1):
        _, _, routing = figure1
        expected = np.array(
            [
                [1, 1, 0, 0, 0],
                [1, 0, 1, 1, 0],
                [1, 0, 1, 0, 1],
            ],
            dtype=np.uint8,
        )
        assert np.array_equal(routing.matrix, expected)

    def test_figure2_counts_match_paper(self, figure2):
        _, _, routing = figure2
        assert routing.num_paths == 6
        assert routing.num_links == 8
        assert routing.rank() == 5

    def test_rows_by_beacon(self, figure2):
        _, paths, routing = figure2
        grouped = routing.rows_by_beacon()
        assert set(grouped) == {0, 1}
        assert sorted(sum(grouped.values(), [])) == list(range(6))

    def test_sparse_equals_dense(self, small_tree):
        _, _, routing = small_tree
        assert np.array_equal(
            routing.to_sparse().toarray(), routing.to_dense()
        )

    def test_columns_of_path(self, figure1):
        _, _, routing = figure1
        assert list(routing.columns_of_path(0)) == [0, 1]


class TestAggregation:
    def test_log_rates_sum_over_members(self):
        net, paths = chain_with_branch()
        routing = RoutingMatrix.from_paths(paths)
        phys_log = np.array([-0.1, -0.2, -0.3, -0.4])
        virt = routing.aggregate_log_rates(phys_log)
        merged_col = routing.column_of_physical(0)
        assert virt[merged_col] == pytest.approx(-0.3)

    def test_rates_multiply_over_members(self):
        net, paths = chain_with_branch()
        routing = RoutingMatrix.from_paths(paths)
        phys = np.array([0.9, 0.8, 1.0, 1.0])
        virt = routing.aggregate_rates(phys)
        merged_col = routing.column_of_physical(0)
        assert virt[merged_col] == pytest.approx(0.72)

    def test_any_aggregation(self):
        net, paths = chain_with_branch()
        routing = RoutingMatrix.from_paths(paths)
        flags = np.array([False, True, False, False])
        virt = routing.aggregate_any(flags)
        assert virt[routing.column_of_physical(0)]
        assert not virt[routing.column_of_physical(2)]

    def test_path_rate_is_product_of_columns(self, small_tree):
        topo, paths, routing = small_tree
        rng = np.random.default_rng(0)
        phys = rng.uniform(0.8, 1.0, topo.network.num_links)
        virt_log = routing.aggregate_log_rates(np.log(phys))
        for path in paths[:20]:
            direct = sum(np.log(phys[link.index]) for link in path.links)
            via_matrix = routing.matrix[path.index] @ virt_log
            assert via_matrix == pytest.approx(direct)


class TestValidation:
    def test_row_count_must_match(self, figure1):
        _, paths, routing = figure1
        with pytest.raises(ValueError):
            RoutingMatrix(routing.matrix[:2], paths, routing.virtual_links)

    def test_empty_paths_rejected(self):
        with pytest.raises(ValueError):
            RoutingMatrix.from_paths([])
