"""Tests for the identifiability audits (Section 4)."""

import numpy as np
import pytest

from repro.core.identifiability import (
    audit_identifiability,
    duplicate_column_pairs,
    theoretical_variance_from_truth,
    verify_theorem1,
)


class TestAudit:
    def test_figure1_audit(self, figure1):
        _, paths, routing = figure1
        report = audit_identifiability(routing, paths)
        assert not report.means_identifiable  # the paper's starting point
        assert report.variances_identifiable  # Theorem 1
        assert report.assumptions_hold
        assert "variances identifiable: True" in report.summary()

    def test_figure2_audit(self, figure2):
        _, paths, routing = figure2
        report = audit_identifiability(routing, paths)
        assert report.routing_rank == 5
        assert report.augmented_rank == 8
        assert report.variances_identifiable

    def test_tree_audit(self, small_tree):
        _, paths, routing = small_tree
        report = audit_identifiability(routing, paths)
        assert report.variances_identifiable
        assert not report.fluttering_pairs

    def test_mesh_audit(self, small_mesh):
        _, paths, routing = small_mesh
        report = audit_identifiability(routing, paths)
        assert report.variances_identifiable

    def test_duplicate_columns_detected(self):
        M = np.array([[1, 1, 0], [1, 1, 1]], dtype=np.uint8)
        assert duplicate_column_pairs(M) == [(0, 1)]

    def test_theorem1_on_examples(self, figure1, figure2, small_tree):
        for _, paths, routing in (figure1, figure2, small_tree):
            assert verify_theorem1(routing, paths)


class TestTheoreticalVariance:
    def test_matches_numpy_var(self, figure1):
        _, _, routing = figure1
        X = np.random.default_rng(0).normal(size=(30, routing.num_links))
        expected = X.var(axis=0, ddof=1)
        assert np.allclose(
            theoretical_variance_from_truth(routing, X), expected
        )

    def test_shape_validation(self, figure1):
        _, _, routing = figure1
        with pytest.raises(ValueError):
            theoretical_variance_from_truth(routing, np.ones((5, 2)))
        with pytest.raises(ValueError):
            theoretical_variance_from_truth(
                routing, np.ones((1, routing.num_links))
            )
