"""Tests for covariance estimation and phase-1 variance learning."""

import numpy as np
import pytest

from repro.core.augmented import intersecting_pairs
from repro.core.covariance import (
    negative_pair_mask,
    sample_covariance_matrix,
    sample_covariance_pairs,
)
from repro.core.variance import (
    VARIANCE_METHODS,
    estimate_link_variances,
    variance_recovery_error,
)
from repro.probing import MeasurementCampaign, Snapshot


class TestSampleCovariance:
    def test_matches_numpy_cov(self):
        Y = np.random.default_rng(0).normal(size=(40, 7))
        ours = sample_covariance_matrix(Y)
        theirs = np.cov(Y, rowvar=False)
        assert np.allclose(ours, theirs)

    def test_pairs_match_full_matrix(self):
        Y = np.random.default_rng(1).normal(size=(25, 9))
        full = sample_covariance_matrix(Y)
        i = np.array([0, 3, 8, 2])
        j = np.array([0, 5, 8, 7])
        assert np.allclose(
            sample_covariance_pairs(Y, i, j), full[i, j]
        )

    def test_blocked_extraction(self):
        Y = np.random.default_rng(2).normal(size=(10, 50))
        i, j = np.triu_indices(50)
        small_blocks = sample_covariance_pairs(Y, i, j, block_size=17)
        one_block = sample_covariance_pairs(Y, i, j)
        assert np.allclose(small_blocks, one_block)

    def test_requires_two_snapshots(self):
        with pytest.raises(ValueError):
            sample_covariance_matrix(np.ones((1, 4)))

    def test_negative_mask(self):
        assert negative_pair_mask(np.array([-1.0, 0.0, 2.0])).tolist() == [
            True,
            False,
            False,
        ]


def synthetic_campaign(routing, link_std, m, seed):
    """Generate snapshots whose log rates follow Y = R X exactly.

    X ~ per-link independent with the given std devs; the resulting
    campaign has known ground-truth variances link_std**2.
    """
    rng = np.random.default_rng(seed)
    R = routing.to_dense()
    campaign = MeasurementCampaign(routing=routing)
    for _ in range(m):
        x = -np.abs(rng.normal(0.0, link_std))  # log rates <= 0
        y = R @ x
        campaign.append(
            Snapshot(path_transmission=np.exp(y), num_probes=10**9)
        )
    return campaign


class TestVarianceEstimation:
    @pytest.mark.parametrize("method", VARIANCE_METHODS)
    def test_recovers_known_variances(self, figure2, method):
        """With many exact snapshots, every solver recovers v."""
        _, _, routing = figure2
        link_std = np.linspace(0.02, 0.2, routing.num_links)
        campaign = synthetic_campaign(routing, link_std, m=4000, seed=3)
        estimate = estimate_link_variances(campaign, method=method)
        true_var = link_std**2 * (1 - 2 / np.pi)  # var of -|N(0, s)|
        assert variance_recovery_error(estimate, true_var) < 0.15

    def test_methods_agree_on_same_data(self, figure2):
        _, _, routing = figure2
        campaign = synthetic_campaign(
            routing, np.full(routing.num_links, 0.1), m=300, seed=4
        )
        estimates = {
            m: estimate_link_variances(campaign, method=m).variances
            for m in ("lsmr", "normal", "qr")
        }
        assert np.allclose(estimates["lsmr"], estimates["normal"], atol=1e-8)
        assert np.allclose(estimates["qr"], estimates["normal"], atol=1e-8)

    def test_nnls_never_negative(self, figure2):
        _, _, routing = figure2
        campaign = synthetic_campaign(
            routing, np.full(routing.num_links, 0.05), m=20, seed=5
        )
        estimate = estimate_link_variances(campaign, method="nnls")
        assert (estimate.variances >= 0).all()

    def test_diagnostics_populated(self, figure2):
        _, _, routing = figure2
        campaign = synthetic_campaign(
            routing, np.full(routing.num_links, 0.05), m=30, seed=6
        )
        estimate = estimate_link_variances(campaign)
        assert estimate.covariance_summary.num_snapshots == 30
        assert estimate.covariance_summary.num_pairs > 0
        assert estimate.residual_norm >= 0

    def test_order_by_variance(self, figure2):
        _, _, routing = figure2
        campaign = synthetic_campaign(
            routing, np.linspace(0.01, 0.3, routing.num_links), m=2000, seed=7
        )
        estimate = estimate_link_variances(campaign)
        order = estimate.order_by_variance()
        assert (np.diff(estimate.variances[order]) >= 0).all()

    def test_unknown_method_rejected(self, figure2):
        _, _, routing = figure2
        campaign = synthetic_campaign(
            routing, np.full(routing.num_links, 0.1), m=5, seed=8
        )
        with pytest.raises(ValueError, match="unknown method"):
            estimate_link_variances(campaign, method="bogus")

    def test_needs_two_snapshots(self, figure2):
        _, _, routing = figure2
        campaign = synthetic_campaign(
            routing, np.full(routing.num_links, 0.1), m=1, seed=9
        )
        with pytest.raises(ValueError, match="two snapshots"):
            estimate_link_variances(campaign)

    def test_pairs_reuse(self, figure2):
        _, _, routing = figure2
        pairs = intersecting_pairs(routing.matrix)
        campaign = synthetic_campaign(
            routing, np.full(routing.num_links, 0.1), m=50, seed=10
        )
        with_reuse = estimate_link_variances(campaign, pairs=pairs)
        without = estimate_link_variances(campaign)
        assert np.allclose(with_reuse.variances, without.variances)

    def test_recovery_error_requires_alignment(self, figure2):
        _, _, routing = figure2
        campaign = synthetic_campaign(
            routing, np.full(routing.num_links, 0.1), m=10, seed=11
        )
        estimate = estimate_link_variances(campaign)
        with pytest.raises(ValueError):
            variance_recovery_error(estimate, np.ones(3))
